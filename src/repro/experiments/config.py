"""Experiment configuration objects.

Every end-to-end run is described by three pieces:

* a *system* description -- either a typed spec from the system registry
  (:class:`~repro.experiments.registry.SystemSpec` subclasses such as
  ``SkyWalkerConfig`` or ``GatewayConfig``) or the legacy
  :class:`SystemConfig` shim,
* a :class:`ClusterConfig` -- how many replicas per region and which model
  profile they run, and
* a :class:`WorkloadSpec` -- the programs each region's clients execute.

Keeping the description declarative lets the benchmark harness sweep systems
and workloads without duplicating wiring code.

.. deprecated::
    :class:`SystemConfig` (the single grab-bag ``kind=...`` dataclass) is a
    compatibility shim over the system registry.  New code should use the
    registered typed configs (``repro.experiments.systems`` /
    ``REGISTRY.spec(kind, ...)``); ``SystemConfig`` remains supported and
    simply resolves through :meth:`SystemConfig.resolve`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..faults import FaultsLike
from ..replica import LLAMA_8B_L4, ModelProfile
from ..workloads.program import Program
from .registry import REGISTRY, SystemSpec

__all__ = [
    "SystemConfig",
    "ClusterConfig",
    "WorkloadSpec",
    "ExperimentConfig",
    "SYSTEM_KINDS",
    "BASELINE_SYSTEMS",
    "ALL_SYSTEMS",
]

#: The seed catalogue of system kinds (the paper's §5.1 line-up).  The
#: authoritative, extensible list lives in the system registry --
#: see :func:`repro.experiments.registry.registered_system_kinds`.
SYSTEM_KINDS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
    "skywalker-ch",
    "skywalker",
    "region-local",
)

#: The baselines of Fig. 8 in presentation order.
BASELINE_SYSTEMS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
)

#: Full Fig. 8 line-up.
ALL_SYSTEMS = BASELINE_SYSTEMS + ("skywalker-ch", "skywalker")


@dataclass(frozen=True)
class SystemConfig:
    """Which balancer architecture to build and how to configure it.

    .. deprecated::
        Deprecation-only shim: no first-party example or benchmark uses it
        any more, and constructing one emits a :class:`DeprecationWarning`.
        It remains functional so third-party scripts keep running.  The
        union of every system's knobs lives here; the registry's typed
        configs split them per system.  ``kind`` may be any *registered*
        system kind -- including ones added by plugins such as
        ``"skywalker-hybrid"`` -- not just the seed :data:`SYSTEM_KINDS`.
    """

    kind: str
    label: Optional[str] = None
    #: Pushing policy for SkyWalker variants: "BP", "SP-O" or "SP-P".
    pushing: str = "SP-P"
    sp_o_threshold: int = 24
    probe_interval_s: float = 0.1
    prefix_match_threshold: float = 0.5
    trie_max_tokens: int = 2_000_000
    #: Consistent-hashing key: "user" (user id) or "session" (session id).
    hash_key: str = "user"
    #: Region hosting the single balancer of centralized baselines.
    central_region: str = "us"
    #: Optional routing constraint: None, "gdpr" or "continent".
    constraint: Optional[str] = None
    #: Gateway spill threshold (GKE baseline only).
    gateway_spill_threshold: float = 16.0

    def __post_init__(self) -> None:
        warnings.warn(
            "SystemConfig(kind=...) is deprecated; use the registered typed "
            "configs (SkyWalkerConfig, GatewayConfig, CentralizedConfig, ...) "
            "or REGISTRY.spec(kind, **overrides) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if self.kind not in REGISTRY:
            raise ValueError(
                f"unknown system kind {self.kind!r}; expected one of {REGISTRY.names()}"
            )
        if self.hash_key not in ("user", "session"):
            raise ValueError("hash_key must be 'user' or 'session'")

    @property
    def name(self) -> str:
        return self.label or self.kind

    def resolve(self) -> SystemSpec:
        """The registered typed spec equivalent to this legacy config."""
        return REGISTRY.spec_from_legacy(self)


@dataclass(frozen=True)
class ClusterConfig:
    """Replica fleet description."""

    replicas_per_region: Dict[str, int] = field(
        default_factory=lambda: {"us": 4, "eu": 4, "asia": 4}
    )
    profile: ModelProfile = LLAMA_8B_L4
    enable_prefix_cache: bool = True
    record_utilization: bool = False

    @property
    def total_replicas(self) -> int:
        return sum(self.replicas_per_region.values())


@dataclass
class WorkloadSpec:
    """Programs and client concurrency per region."""

    name: str
    programs_by_region: Dict[str, List[Program]]
    clients_per_region: Dict[str, int]
    #: Which identity field the workload's natural consistent-hashing key is
    #: ("user" for chat datasets, "session" for Tree-of-Thoughts questions).
    hash_key: str = "user"

    @property
    def total_programs(self) -> int:
        return sum(len(programs) for programs in self.programs_by_region.values())

    @property
    def total_requests(self) -> int:
        return sum(
            program.num_requests
            for programs in self.programs_by_region.values()
            for program in programs
        )

    def fresh_copy(self) -> "WorkloadSpec":
        """A copy with pristine programs/requests, safe to run again.

        Requests are mutable (timestamps, routing state), so a workload that
        has been through ``run_experiment`` cannot be reused directly; this
        is what lets ``run_sweep`` build a workload once and replay it
        across every system variant.
        """
        return WorkloadSpec(
            name=self.name,
            programs_by_region={
                region: [program.clone() for program in programs]
                for region, programs in self.programs_by_region.items()
            },
            clients_per_region=dict(self.clients_per_region),
            hash_key=self.hash_key,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete end-to-end run description.

    ``system`` accepts either a registry-typed spec (preferred) or the
    legacy :class:`SystemConfig` shim.  ``faults`` optionally injects a
    deterministic :class:`~repro.faults.FaultSchedule` (or the name of a
    registered schedule) into the run; ``None`` -- or an empty schedule --
    leaves the simulation bit-identical to a fault-free run.
    """

    system: Union[SystemConfig, SystemSpec]
    cluster: ClusterConfig
    duration_s: float = 120.0
    seed: int = 0
    network_jitter: float = 0.05
    faults: FaultsLike = None
