"""Experiment configuration objects.

Every end-to-end run is described by three pieces:

* a :class:`SystemConfig` -- which load-balancing system to build (SkyWalker,
  SkyWalker-CH, or one of the §5.1 baselines) and its knobs,
* a :class:`ClusterConfig` -- how many replicas per region and which model
  profile they run, and
* a :class:`WorkloadSpec` -- the programs each region's clients execute.

Keeping the description declarative lets the benchmark harness sweep systems
and workloads without duplicating wiring code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..replica import LLAMA_8B_L4, ModelProfile
from ..workloads.program import Program

__all__ = [
    "SystemConfig",
    "ClusterConfig",
    "WorkloadSpec",
    "ExperimentConfig",
    "SYSTEM_KINDS",
    "BASELINE_SYSTEMS",
    "ALL_SYSTEMS",
]

#: Every system kind the runner knows how to build.
SYSTEM_KINDS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
    "skywalker-ch",
    "skywalker",
    "region-local",
)

#: The baselines of Fig. 8 in presentation order.
BASELINE_SYSTEMS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
)

#: Full Fig. 8 line-up.
ALL_SYSTEMS = BASELINE_SYSTEMS + ("skywalker-ch", "skywalker")


@dataclass(frozen=True)
class SystemConfig:
    """Which balancer architecture to build and how to configure it."""

    kind: str
    label: Optional[str] = None
    #: Pushing policy for SkyWalker variants: "BP", "SP-O" or "SP-P".
    pushing: str = "SP-P"
    sp_o_threshold: int = 24
    probe_interval_s: float = 0.1
    prefix_match_threshold: float = 0.5
    trie_max_tokens: int = 2_000_000
    #: Consistent-hashing key: "user" (user id) or "session" (session id).
    hash_key: str = "user"
    #: Region hosting the single balancer of centralized baselines.
    central_region: str = "us"
    #: Optional routing constraint: None, "gdpr" or "continent".
    constraint: Optional[str] = None
    #: Gateway spill threshold (GKE baseline only).
    gateway_spill_threshold: float = 16.0

    def __post_init__(self) -> None:
        if self.kind not in SYSTEM_KINDS:
            raise ValueError(f"unknown system kind {self.kind!r}; expected one of {SYSTEM_KINDS}")
        if self.hash_key not in ("user", "session"):
            raise ValueError("hash_key must be 'user' or 'session'")

    @property
    def name(self) -> str:
        return self.label or self.kind


@dataclass(frozen=True)
class ClusterConfig:
    """Replica fleet description."""

    replicas_per_region: Dict[str, int] = field(
        default_factory=lambda: {"us": 4, "eu": 4, "asia": 4}
    )
    profile: ModelProfile = LLAMA_8B_L4
    enable_prefix_cache: bool = True
    record_utilization: bool = False

    @property
    def total_replicas(self) -> int:
        return sum(self.replicas_per_region.values())


@dataclass
class WorkloadSpec:
    """Programs and client concurrency per region."""

    name: str
    programs_by_region: Dict[str, List[Program]]
    clients_per_region: Dict[str, int]
    #: Which identity field the workload's natural consistent-hashing key is
    #: ("user" for chat datasets, "session" for Tree-of-Thoughts questions).
    hash_key: str = "user"

    @property
    def total_programs(self) -> int:
        return sum(len(programs) for programs in self.programs_by_region.values())

    @property
    def total_requests(self) -> int:
        return sum(
            program.num_requests
            for programs in self.programs_by_region.values()
            for program in programs
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete end-to-end run description."""

    system: SystemConfig
    cluster: ClusterConfig
    duration_s: float = 120.0
    seed: int = 0
    network_jitter: float = 0.05
