"""Experiment configuration objects.

Every end-to-end run is described by three pieces:

* a *system* description -- a typed spec from the system registry
  (:class:`~repro.experiments.registry.SystemSpec` subclasses such as
  ``SkyWalkerConfig`` or ``GatewayConfig``),
* a :class:`ClusterConfig` -- how many replicas per region, which model
  profile they run, and how their KV memory is organised
  (:class:`~repro.mem.MemoryConfig`), and
* a :class:`WorkloadSpec` -- the programs each region's clients execute.

Keeping the description declarative lets the benchmark harness sweep systems
and workloads without duplicating wiring code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..faults import FaultsLike
from ..mem import MemoryConfig
from ..net import NetConfig
from ..replica import LLAMA_8B_L4, ModelProfile
from ..workloads.program import Program
from ..workloads.streams import ProgramStream
from .registry import SystemSpec

__all__ = [
    "ClusterConfig",
    "ProgramsLike",
    "WorkloadSpec",
    "ExperimentConfig",
    "SYSTEM_KINDS",
    "BASELINE_SYSTEMS",
    "ALL_SYSTEMS",
]

#: The seed catalogue of system kinds (the paper's §5.1 line-up).  The
#: authoritative, extensible list lives in the system registry --
#: see :func:`repro.experiments.registry.registered_system_kinds`.
SYSTEM_KINDS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
    "skywalker-ch",
    "skywalker",
    "region-local",
)

#: The baselines of Fig. 8 in presentation order.
BASELINE_SYSTEMS = (
    "gke-gateway",
    "round-robin",
    "least-load",
    "consistent-hash",
    "sglang-router",
)

#: Full Fig. 8 line-up.
ALL_SYSTEMS = BASELINE_SYSTEMS + ("skywalker-ch", "skywalker")


@dataclass(frozen=True)
class ClusterConfig:
    """Replica fleet description."""

    replicas_per_region: Dict[str, int] = field(
        default_factory=lambda: {"us": 4, "eu": 4, "asia": 4}
    )
    profile: ModelProfile = LLAMA_8B_L4
    enable_prefix_cache: bool = True
    #: Optional tiered/paged KV memory model applied to every replica (and,
    #: via its ``push_*`` knobs, to the balancers' dispatch path).  ``None``
    #: keeps the flat legacy model and is bit-identical to it.
    memory: Optional[MemoryConfig] = None
    record_utilization: bool = False
    #: Optional graph-routed WAN (:class:`~repro.net.NetConfig`): multi-hop
    #: topology, routing policy and shared-link bandwidth contention.
    #: ``None`` keeps the legacy pairwise network, byte-for-byte.
    network: Optional[NetConfig] = None

    @property
    def total_replicas(self) -> int:
        return sum(self.replicas_per_region.values())


#: A region's programs: a materialized list (the legacy path) or a lazy,
#: re-instantiable :class:`~repro.workloads.streams.ProgramStream`.
ProgramsLike = Union[List[Program], ProgramStream]


@dataclass
class WorkloadSpec:
    """Programs and client concurrency per region.

    ``programs_by_region`` values may be materialized program lists (the
    legacy path, bit-identical to all historical runs) or
    :class:`~repro.workloads.streams.ProgramStream` specs, which regenerate
    their programs lazily on every iteration so a million-request day never
    lives in memory at once.
    """

    name: str
    programs_by_region: Dict[str, ProgramsLike]
    clients_per_region: Dict[str, int]
    #: Which identity field the workload's natural consistent-hashing key is
    #: ("user" for chat datasets, "session" for Tree-of-Thoughts questions).
    hash_key: str = "user"

    @property
    def streamed(self) -> bool:
        """True when any region's programs are a lazy stream."""
        return any(
            isinstance(programs, ProgramStream)
            for programs in self.programs_by_region.values()
        )

    @property
    def total_programs(self) -> int:
        return sum(len(programs) for programs in self.programs_by_region.values())

    @property
    def total_requests(self) -> int:
        """Total requests across all programs.

        For streamed regions this *iterates* the stream (O(1) memory but
        full generation CPU) -- fine for reports, not for hot paths.
        """
        return sum(
            program.num_requests
            for programs in self.programs_by_region.values()
            for program in programs
        )

    def fresh_copy(self) -> "WorkloadSpec":
        """A copy with pristine programs/requests, safe to run again.

        Requests are mutable (timestamps, routing state), so a workload that
        has been through ``run_experiment`` cannot be reused directly; this
        is what lets ``run_sweep`` build a workload once and replay it
        across every system variant.  Materialized lists are deep-cloned;
        streams are re-instantiable descriptions (every iteration builds
        pristine requests), so they are reused as-is.
        """
        return WorkloadSpec(
            name=self.name,
            programs_by_region={
                region: (
                    programs.fresh_copy()
                    if isinstance(programs, ProgramStream)
                    else [program.clone() for program in programs]
                )
                for region, programs in self.programs_by_region.items()
            },
            clients_per_region=dict(self.clients_per_region),
            hash_key=self.hash_key,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete end-to-end run description.

    ``system`` is a registry-typed spec.  ``faults`` optionally injects a
    deterministic :class:`~repro.faults.FaultSchedule` (or the name of a
    registered schedule) into the run; ``None`` -- or an empty schedule --
    leaves the simulation bit-identical to a fault-free run.
    """

    system: SystemSpec
    cluster: ClusterConfig
    duration_s: float = 120.0
    seed: int = 0
    network_jitter: float = 0.05
    faults: FaultsLike = None
