"""The pluggable system registry: the public API for adding balancer systems.

Instead of a hard-coded if/elif ladder in the experiment runner, every
load-balancing *system* (a balancer family plus its wiring) registers itself
with the global :data:`REGISTRY`:

.. code-block:: python

    from repro.experiments.registry import SystemSpec, register_system

    @dataclass(frozen=True)
    class MySystemConfig(SystemSpec):
        kind: str = "my-system"
        fanout: int = 2

    @register_system("my-system", config=MySystemConfig)
    def build_my_system(spec, ctx):
        balancer = ...            # create balancer(s) from spec + ctx
        ctx.attach(balancer)      # add replicas, start, register with DNS
        return [balancer]

After registration the system is a first-class citizen everywhere:
``run_experiment`` builds it and ``run_sweep`` sweeps it -- with **no**
edits to the runner or to any central kind enum.

The :class:`BuildContext` hands builders everything they may need (the
simulation environment, network, deployment, frontend, client regions, the
resolved hash key) plus helpers for the common wiring patterns: fully-wired
centralized balancers (:meth:`BuildContext.attach`) and regional balancer
meshes (:func:`build_regional_mesh`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..cluster import Deployment, Frontend
from ..core.interface import Balancer
from ..core.policies import make_constraint as _make_named_constraint
from ..network import Network, NetworkTopology
from ..sim import Environment
from ..workloads.request import Request

__all__ = [
    "SystemSpec",
    "BuildContext",
    "SystemEntry",
    "SystemRegistry",
    "REGISTRY",
    "register_system",
    "registered_system_kinds",
    "build_regional_mesh",
]

SystemBuilder = Callable[["SystemSpec", "BuildContext"], List[Balancer]]


# ----------------------------------------------------------------------
# typed system configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemSpec:
    """Base class for every system's typed configuration.

    Subclasses add their own knobs (all defaulted) and set ``kind`` to the
    registry name they are registered under.  ``hash_key`` is optional: when
    left ``None`` the workload's natural identity key is used.
    """

    kind: str = ""
    label: Optional[str] = None
    #: Consistent-hashing key: "user", "session", or None (= workload's).
    hash_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.hash_key not in (None, "user", "session"):
            raise ValueError("hash_key must be 'user', 'session' or None")

    @property
    def name(self) -> str:
        """Display name used in metrics rows."""
        return self.label or self.kind


# ----------------------------------------------------------------------
# build context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BuildContext:
    """Everything a system builder may need to wire itself into the stack."""

    env: Environment
    network: Network
    deployment: Deployment
    frontend: Frontend
    client_regions: Tuple[str, ...] = ()
    #: The resolved consistent-hashing key for this run ("user"/"session").
    hash_key: str = "user"
    #: Optional :class:`~repro.mem.TransferModel` for pushed KV prefixes
    #: (from ``ClusterConfig.memory.push_*``); installed on every balancer
    #: the context attaches so BP/SP-O/SP-P dispatches pay size-dependent
    #: transfer costs.  ``None`` keeps pushes free, as before.
    push_transfer: Optional[object] = None

    @property
    def topology(self) -> NetworkTopology:
        return self.network.topology

    @property
    def regions(self) -> List[str]:
        """Every region hosting replicas or clients, sorted."""
        return sorted(set(self.deployment.regions) | set(self.client_regions))

    def hash_key_fn(self) -> Callable[[Request], str]:
        """Identity-extraction function for the resolved hash key."""
        if self.hash_key == "user":
            return lambda request: request.user_id
        return lambda request: request.session_id

    def make_constraint(self, constraint: Optional[str]):
        """Instantiate a named routing constraint (None passes through).

        Names resolve through the constraint registry
        (:func:`repro.core.policies.register_constraint`), so third-party
        constraints work anywhere the built-in ``"gdpr"``/``"continent"``
        do -- including inside sweep worker processes.
        """
        if constraint is None:
            return None
        return _make_named_constraint(constraint, self.topology)

    def attach(self, balancer: Balancer, *, regions: Optional[Sequence[str]] = None) -> Balancer:
        """Finish wiring one balancer: add replicas (all of them, or only the
        listed regions'), start it, and register it with the frontend."""
        if regions is None:
            replicas = self.deployment.replicas
        else:
            replicas = [r for region in regions for r in self.deployment.replicas_in(region)]
        for replica in replicas:
            balancer.add_replica(replica)
        if self.push_transfer is not None:
            balancer.push_transfer = self.push_transfer
        balancer.start()
        self.frontend.register_balancer(balancer)
        return balancer


def build_regional_mesh(
    ctx: BuildContext,
    make_balancer: Callable[[str], Balancer],
    *,
    wire_peers: bool = True,
) -> List[Balancer]:
    """Build one balancer per region and wire them into a full mesh.

    ``make_balancer(region)`` creates the (unstarted) balancer for a region;
    this helper attaches the region's replicas, cross-registers every pair
    as peers (when ``wire_peers`` and the balancers support ``add_peer``),
    starts them and registers them with the frontend.  This is the wiring
    shared by the SkyWalker family and any custom regional system.
    """
    balancers = [make_balancer(region) for region in ctx.regions]
    for balancer in balancers:
        for replica in ctx.deployment.replicas_in(balancer.region):
            balancer.add_replica(replica)
        if ctx.push_transfer is not None:
            balancer.push_transfer = ctx.push_transfer
    if wire_peers:
        for balancer in balancers:
            add_peer = getattr(balancer, "add_peer", None)
            if add_peer is None:
                continue
            for peer in balancers:
                if peer is not balancer:
                    add_peer(peer)
    for balancer in balancers:
        balancer.start()
        ctx.frontend.register_balancer(balancer)
    return balancers


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemEntry:
    """One registered system: its name, typed config class and builder."""

    name: str
    config_cls: type
    builder: SystemBuilder
    description: str = ""


class SystemRegistry:
    """Name -> :class:`SystemEntry` mapping with build dispatch."""

    def __init__(self) -> None:
        self._entries: Dict[str, SystemEntry] = {}

    # -- registration ---------------------------------------------------
    def register(
        self,
        name: str,
        *,
        config: type = SystemSpec,
        description: str = "",
        replace_existing: bool = False,
    ) -> Callable[[SystemBuilder], SystemBuilder]:
        """Decorator registering ``builder`` under ``name``."""

        def decorator(builder: SystemBuilder) -> SystemBuilder:
            if name in self._entries and not replace_existing:
                raise ValueError(f"system {name!r} is already registered")
            self._entries[name] = SystemEntry(
                name=name, config_cls=config, builder=builder, description=description
            )
            return builder

        return decorator

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    # -- lookup ---------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._entries

    def names(self) -> Tuple[str, ...]:
        self._ensure_builtins()
        return tuple(self._entries)

    def get(self, name: str) -> SystemEntry:
        self._ensure_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown system kind {name!r}; registered kinds: {tuple(self._entries)}"
            ) from None

    def spec(self, kind: str, **overrides) -> SystemSpec:
        """A default-configured typed spec for a registered kind."""
        entry = self.get(kind)
        return entry.config_cls(kind=kind, **overrides)

    # -- building -------------------------------------------------------
    def build(self, spec: SystemSpec, ctx: BuildContext) -> List[Balancer]:
        """Dispatch to the registered builder for ``spec.kind``."""
        entry = self.get(spec.kind)
        return entry.builder(spec, ctx)

    # -- built-in registration ------------------------------------------
    def _ensure_builtins(self) -> None:
        """Import the modules that register the built-in systems.

        Deferred to first use so module import order never matters; plugin
        modules (e.g. ``repro.experiments.hybrid``) register themselves the
        same way the built-ins do.
        """
        from . import hybrid, systems  # noqa: F401  (imported for side effect)


#: The process-global registry every public entry point dispatches through.
REGISTRY = SystemRegistry()


def register_system(
    name: str,
    *,
    config: type = SystemSpec,
    description: str = "",
    replace_existing: bool = False,
) -> Callable[[SystemBuilder], SystemBuilder]:
    """Register a system builder with the global :data:`REGISTRY`.

    This is the public extension point: decorate a builder taking
    ``(spec, ctx)`` and returning the list of created balancers.
    """
    return REGISTRY.register(
        name, config=config, description=description, replace_existing=replace_existing
    )


def registered_system_kinds() -> Tuple[str, ...]:
    """Every system kind currently registered (built-ins and plugins)."""
    return REGISTRY.names()
