"""Built-in system registrations: the paper's baselines and SkyWalker.

Each system family gets its own typed config dataclass and registers a
builder with the global registry.  Nothing here is special-cased by the
runner -- these registrations use exactly the same public API available to
third-party systems (see :mod:`repro.experiments.hybrid` for an external
example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..balancers import (
    ConsistentHashBalancer,
    GatewayBalancer,
    LeastLoadBalancer,
    RoundRobinBalancer,
    SGLangRouterBalancer,
)
from ..core import (
    ROUTING_CONSISTENT_HASH,
    ROUTING_PREFIX_TREE,
    SkyWalkerBalancer,
    make_pushing_policy,
)
from ..core.interface import Balancer
from .registry import BuildContext, SystemSpec, build_regional_mesh, register_system

__all__ = [
    "CentralizedConfig",
    "GatewayConfig",
    "SkyWalkerConfig",
    "build_skywalker_region",
]


# ----------------------------------------------------------------------
# centralized §5.1 baselines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CentralizedConfig(SystemSpec):
    """A single global balancer (Round Robin / Least Load / CH / SGLang)."""

    kind: str = "round-robin"
    #: Region hosting the single balancer.
    central_region: str = "us"


_CENTRALIZED_CLASSES = {
    "round-robin": RoundRobinBalancer,
    "least-load": LeastLoadBalancer,
    "consistent-hash": ConsistentHashBalancer,
    "sglang-router": SGLangRouterBalancer,
}


def _build_centralized(spec: CentralizedConfig, ctx: BuildContext) -> List[Balancer]:
    cls = _CENTRALIZED_CLASSES[spec.kind]
    kwargs = {}
    if spec.kind == "consistent-hash":
        kwargs["hash_key_fn"] = ctx.hash_key_fn()
    balancer = cls(
        ctx.env, f"{spec.kind}@{spec.central_region}", spec.central_region, ctx.network, **kwargs
    )
    ctx.attach(balancer)
    return [balancer]


for _kind, _cls in _CENTRALIZED_CLASSES.items():
    register_system(
        _kind,
        config=CentralizedConfig,
        description=f"Centralized {_cls.__name__} baseline (§5.1)",
    )(_build_centralized)


# ----------------------------------------------------------------------
# GKE-Gateway baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GatewayConfig(SystemSpec):
    """Per-region gateways with coarse spill-over (GKE Gateway baseline)."""

    kind: str = "gke-gateway"
    #: Average outstanding per local replica above which traffic spills.
    spill_threshold: float = 16.0


@register_system(
    "gke-gateway",
    config=GatewayConfig,
    description="Multi-cluster gateway with local preference and spill-over (§5.1)",
)
def _build_gateway(spec: GatewayConfig, ctx: BuildContext) -> List[Balancer]:
    gateways: List[Balancer] = []
    for region in ctx.regions:
        gateway = GatewayBalancer(
            ctx.env,
            f"gateway@{region}",
            region,
            ctx.network,
            spill_threshold=spec.spill_threshold,
        )
        ctx.attach(gateway)
        gateways.append(gateway)
    return gateways


# ----------------------------------------------------------------------
# the SkyWalker family
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SkyWalkerConfig(SystemSpec):
    """SkyWalker and its variants (SkyWalker-CH, Region-Local)."""

    kind: str = "skywalker"
    #: Pushing policy: "BP", "SP-O" or "SP-P".
    pushing: str = "SP-P"
    sp_o_threshold: int = 24
    probe_interval_s: float = 0.1
    prefix_match_threshold: float = 0.5
    trie_max_tokens: int = 2_000_000
    #: Optional routing constraint: None, "gdpr" or "continent".
    constraint: Optional[str] = None
    #: Prefix-affinity escape hatch: a preferred replica is abandoned for
    #: the least-loaded one only when its estimated load exceeds BOTH the
    #: absolute and the relative threshold (defaults match the balancer).
    #: Cranking the absolute threshold sky-high yields a pure
    #: prefix-affinity variant that never escapes -- the gray-failure
    #: benchmark's strawman.
    balance_abs_threshold: int = 8
    balance_rel_threshold: float = 1.5


def build_skywalker_region(
    spec: SkyWalkerConfig,
    ctx: BuildContext,
    region: str,
    *,
    routing: str = ROUTING_PREFIX_TREE,
    allow_remote: bool = True,
    **extra,
) -> SkyWalkerBalancer:
    """Create one (unstarted, unwired) regional SkyWalker balancer from a
    spec.  Shared by every SkyWalker-family builder, including plugins."""
    pushing_kwargs = {}
    if spec.pushing.upper() == "SP-O":
        pushing_kwargs["max_outstanding"] = spec.sp_o_threshold
    return SkyWalkerBalancer(
        ctx.env,
        f"{spec.kind}@{region}",
        region,
        ctx.network,
        routing=routing,
        pushing_policy=make_pushing_policy(spec.pushing, **pushing_kwargs),
        probe_interval_s=spec.probe_interval_s,
        prefix_match_threshold=spec.prefix_match_threshold,
        trie_max_tokens=spec.trie_max_tokens,
        balance_abs_threshold=spec.balance_abs_threshold,
        balance_rel_threshold=spec.balance_rel_threshold,
        allow_remote=allow_remote,
        constraint=ctx.make_constraint(spec.constraint),
        hash_key_fn=ctx.hash_key_fn(),
        **extra,
    )


def _make_skywalker_builder(routing: str, allow_remote: bool):
    def builder(spec: SkyWalkerConfig, ctx: BuildContext) -> List[Balancer]:
        return build_regional_mesh(
            ctx,
            lambda region: build_skywalker_region(
                spec, ctx, region, routing=routing, allow_remote=allow_remote
            ),
        )

    return builder


register_system(
    "skywalker",
    config=SkyWalkerConfig,
    description="SkyWalker: two-layer prefix-tree routing with selective pushing (§3)",
)(_make_skywalker_builder(ROUTING_PREFIX_TREE, allow_remote=True))

register_system(
    "skywalker-ch",
    config=SkyWalkerConfig,
    description="SkyWalker-CH: two-layer consistent hashing variant (§3.2)",
)(_make_skywalker_builder(ROUTING_CONSISTENT_HASH, allow_remote=True))

register_system(
    "region-local",
    config=SkyWalkerConfig,
    description="Region-Local: SkyWalker without cross-region offloading (Fig. 10)",
)(_make_skywalker_builder(ROUTING_PREFIX_TREE, allow_remote=False))
