"""Fig. 9 micro-benchmark: blind pushing vs the two selective-pushing variants.

The paper isolates the pushing mechanism by running everything inside a
single region (no cross-region effects): 4 replicas, 30 clients, the
2-branch Tree-of-Thoughts workload, with a prefix-aware router whose pushing
policy is swapped between BP, SP-O and SP-P.

The variants are one sweep (same workload, one system spec per registered
pushing-policy name), so they run through the
:class:`~repro.experiments.sweep.SweepExecutor` and parallelise across
processes like every other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..metrics import RunMetrics
from ..workloads import TreeOfThoughtsConfig, TreeOfThoughtsWorkload
from .config import ClusterConfig, WorkloadSpec
from .sweep import SweepExecutor
from .systems import SkyWalkerConfig

__all__ = ["PushingResult", "run_pushing_benchmark", "build_single_region_tot_workload"]

PUSHING_VARIANTS = ("BP", "SP-O", "SP-P")


@dataclass
class PushingResult:
    """Metrics per pushing policy."""

    runs: Dict[str, RunMetrics] = field(default_factory=dict)

    def get(self, policy: str) -> RunMetrics:
        return self.runs[policy]

    def throughput_gain(self, over: str = "BP", policy: str = "SP-P") -> float:
        base = self.runs[over].throughput_tokens_per_s
        if base == 0:
            raise ValueError(
                f"baseline run {over!r} completed no tokens (zero throughput); "
                "cannot compute a throughput gain over an empty run"
            )
        return self.runs[policy].throughput_tokens_per_s / base

    def p90_ttft_reduction(self, over: str = "BP", policy: str = "SP-P") -> float:
        target = self.runs[policy].ttft.p90
        if target == 0:
            raise ValueError(
                f"run {policy!r} recorded no first tokens (zero p90 TTFT); "
                "cannot compute a TTFT reduction against an empty run"
            )
        return self.runs[over].ttft.p90 / target

    def format_report(self) -> str:
        return "\n".join(metrics.format_row() for metrics in self.runs.values())


def build_single_region_tot_workload(
    *, region: str = "us", clients: int = 30, trees_per_client: int = 2, seed: int = 7
) -> WorkloadSpec:
    """The single-region 2-branch ToT workload used in §5.2."""
    generator = TreeOfThoughtsWorkload(
        TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=seed)
    )
    programs = generator.generate_programs(clients * trees_per_client, region)
    return WorkloadSpec(
        name="tot-single-region",
        programs_by_region={region: programs},
        clients_per_region={region: clients},
        hash_key="session",
    )


def run_pushing_benchmark(
    *,
    policies: Sequence[str] = PUSHING_VARIANTS,
    replicas: int = 4,
    clients: int = 30,
    duration_s: float = 120.0,
    sp_o_threshold: int = 24,
    region: str = "us",
    seed: int = 7,
    workers: int = 1,
) -> PushingResult:
    """Run the BP / SP-O / SP-P comparison in one region.

    ``policies`` may name any registered pushing policy, not just the
    paper's three.  ``workers`` > 1 runs the variants in parallel worker
    processes (identical metrics, less wall-clock).
    """
    workload = build_single_region_tot_workload(
        region=region, clients=clients, seed=seed
    )
    systems = [
        SkyWalkerConfig(
            kind="skywalker",
            label=policy,
            pushing=policy,
            sp_o_threshold=sp_o_threshold,
            hash_key="session",
        )
        for policy in policies
    ]
    cluster = ClusterConfig(replicas_per_region={region: replicas})
    sweep = SweepExecutor(workers=workers).run(
        systems, [workload], cluster=cluster, duration_s=duration_s, seed=seed
    )
    result = PushingResult()
    for policy in policies:
        result.runs[policy] = sweep.get(workload.name, policy)
    return result
