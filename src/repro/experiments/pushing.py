"""Fig. 9 micro-benchmark: blind pushing vs the two selective-pushing variants.

The paper isolates the pushing mechanism by running everything inside a
single region (no cross-region effects): 4 replicas, 30 clients, the
2-branch Tree-of-Thoughts workload, with a prefix-aware router whose pushing
policy is swapped between BP, SP-O and SP-P.

The variants are one sweep (same workload, one system spec per registered
pushing-policy name), so they run through the
:class:`~repro.experiments.sweep.SweepExecutor` and parallelise across
processes like every other sweep.  ``seeds=[...]`` repeats the ablation
with a freshly generated ToT workload per seed; per-seed runs land in
:attr:`PushingResult.seed_runs` and :meth:`PushingResult.aggregate` gives
each policy's mean/95%-CI statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..faults import FaultsLike
from ..metrics import AggregateMetrics, RunMetrics, SweepReport, aggregate_cell
from ..workloads import TreeOfThoughtsConfig, TreeOfThoughtsWorkload
from .config import ClusterConfig, WorkloadSpec
from .sweep import SweepExecutor, SweepTask, check_unique_system_names, normalise_seeds
from .systems import SkyWalkerConfig

__all__ = ["PushingResult", "run_pushing_benchmark", "build_single_region_tot_workload"]

PUSHING_VARIANTS = ("BP", "SP-O", "SP-P")


@dataclass
class PushingResult:
    """Metrics per pushing policy.

    :attr:`runs` holds each policy's base-seed run (bit-identical to the
    historical single-seed output); :attr:`seed_runs` keeps every per-seed
    run for :meth:`aggregate`.
    """

    runs: Dict[str, RunMetrics] = field(default_factory=dict)
    #: Per-seed runs: ``seed_runs[policy][seed]``.
    seed_runs: Dict[str, Dict[int, RunMetrics]] = field(default_factory=dict)

    def get(self, policy: str, seed: Optional[int] = None) -> RunMetrics:
        if seed is None:
            return self.runs[policy]
        return self.seed_runs[policy][seed]

    def aggregate(self, policy: str) -> AggregateMetrics:
        """Mean/stdev/95% CI of one policy across its seeds."""
        return aggregate_cell(self.seed_runs.get(policy), self.runs[policy])

    def report(self) -> SweepReport:
        report = SweepReport()
        for policy in self.runs:
            report.add(self.aggregate(policy))
        return report

    def throughput_gain(self, over: str = "BP", policy: str = "SP-P") -> float:
        base = self.runs[over].throughput_tokens_per_s
        if base == 0:
            raise ValueError(
                f"baseline run {over!r} completed no tokens (zero throughput); "
                "cannot compute a throughput gain over an empty run"
            )
        return self.runs[policy].throughput_tokens_per_s / base

    def p90_ttft_reduction(self, over: str = "BP", policy: str = "SP-P") -> float:
        target = self.runs[policy].ttft.p90
        if target == 0:
            raise ValueError(
                f"run {policy!r} recorded no first tokens (zero p90 TTFT); "
                "cannot compute a TTFT reduction against an empty run"
            )
        return self.runs[over].ttft.p90 / target

    def format_report(self) -> str:
        lines = [metrics.format_row() for metrics in self.runs.values()]
        if any(len(per_seed) > 1 for per_seed in self.seed_runs.values()):
            lines.append("-- aggregate (mean±95% CI) --")
            lines.append(self.report().format_table())
        return "\n".join(lines)


def build_single_region_tot_workload(
    *, region: str = "us", clients: int = 30, trees_per_client: int = 2, seed: int = 7
) -> WorkloadSpec:
    """The single-region 2-branch ToT workload used in §5.2."""
    generator = TreeOfThoughtsWorkload(
        TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=seed)
    )
    programs = generator.generate_programs(clients * trees_per_client, region)
    return WorkloadSpec(
        name="tot-single-region",
        programs_by_region={region: programs},
        clients_per_region={region: clients},
        hash_key="session",
    )


def run_pushing_benchmark(
    *,
    policies: Sequence[str] = PUSHING_VARIANTS,
    replicas: int = 4,
    clients: int = 30,
    duration_s: float = 120.0,
    sp_o_threshold: int = 24,
    region: str = "us",
    seed: int = 7,
    seeds: Optional[Sequence[int]] = None,
    workers: int = 1,
    faults: FaultsLike = None,
) -> PushingResult:
    """Run the BP / SP-O / SP-P comparison in one region.

    ``policies`` may name any registered pushing policy, not just the
    paper's three.  ``seeds=[...]`` repeats the ablation across seeds (a
    fresh ToT workload per seed); ``seeds=[s]`` is bit-identical to
    ``seed=s``.  ``workers`` > 1 runs the (policy, seed) cells in parallel
    worker processes (identical metrics, less wall-clock).  ``faults``
    applies one deterministic fault schedule to every cell.
    """
    systems = [
        SkyWalkerConfig(
            kind="skywalker",
            label=policy,
            pushing=policy,
            sp_o_threshold=sp_o_threshold,
            hash_key="session",
        )
        for policy in policies
    ]
    cluster = ClusterConfig(replicas_per_region={region: replicas})
    check_unique_system_names(systems)
    seed_list = normalise_seeds(seed, seeds)
    tasks: List[SweepTask] = []
    workload_name = None
    for cell_seed in seed_list:
        workload = build_single_region_tot_workload(
            region=region, clients=clients, seed=cell_seed
        )
        workload_name = workload.name
        for system in systems:
            tasks.append(
                SweepTask(
                    system=system,
                    workload=workload,
                    cluster=cluster,
                    duration_s=duration_s,
                    seed=cell_seed,
                    faults=faults,
                )
            )
    sweep = SweepExecutor(workers=workers).run_cells(tasks)
    result = PushingResult()
    for policy in policies:
        # run_sweep_task stamps every run's seed, so runs_for is never empty.
        result.runs[policy] = sweep.get(workload_name, policy)
        result.seed_runs[policy] = sweep.runs_for(workload_name, policy)
    return result
