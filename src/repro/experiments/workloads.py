"""Builders for the evaluation workloads (§5.1).

Each builder returns a :class:`WorkloadSpec` matching one of the paper's
macro-benchmark configurations, with a ``scale`` parameter that shrinks the
client counts proportionally so the same scenario can run as a quick unit
test (scale ~0.05), a benchmark (~0.2) or a full-fidelity experiment (1.0).

Every builder also accepts ``stream=True``, swapping the materialized
program lists for lazy :class:`~repro.workloads.streams.ProgramStream`
specs that regenerate identical programs on every iteration -- same seeds,
same RNG order, byte-identical request payloads (pinned by
``tests/workloads/test_streaming_equivalence.py``) -- in O(1) memory.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List

from ..workloads import (
    ARENA_LIKE,
    WILDCHAT_LIKE,
    ConversationConfig,
    ConversationWorkload,
    Program,
    ProgramStream,
    TreeOfThoughtsConfig,
    TreeOfThoughtsWorkload,
)
from .config import ProgramsLike, WorkloadSpec

__all__ = [
    "build_arena_workload",
    "build_wildchat_workload",
    "build_tot_workload",
    "build_mixed_tree_workload",
    "MACRO_WORKLOAD_BUILDERS",
]

_REGIONS = ("us", "eu", "asia")


def _scaled(count: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(count * scale)))


def _conversation_stream(config: ConversationConfig, region: str) -> ProgramStream:
    """Lazy stream of one region's conversations from ``config``."""
    return ProgramStream(
        factory="conversation",
        region=region,
        num_programs=config.users_per_region * config.conversations_per_user,
        kwargs=(("config", config),),
    )


def build_arena_workload(scale: float = 1.0, *, seed: int = 0,
                         conversations_per_client: int = 2,
                         stream: bool = False) -> WorkloadSpec:
    """ChatBot-Arena-like: equal client counts, 80 conversations per region."""
    clients = _scaled(80, scale)
    config = ConversationConfig(
        regions=_REGIONS,
        users_per_region=clients,
        conversations_per_user=conversations_per_client,
        turns_range=(2, 5),
        lengths=ARENA_LIKE,
        shared_templates=6,
        template_adoption=0.5,
        seed=seed,
    )
    if stream:
        programs_by_region: Dict[str, ProgramsLike] = {
            region: _conversation_stream(config, region) for region in _REGIONS
        }
    else:
        programs_by_region = ConversationWorkload(config).programs_by_region()
    return WorkloadSpec(
        name="chatbot-arena",
        programs_by_region=programs_by_region,
        clients_per_region={region: clients for region in _REGIONS},
        hash_key="user",
    )


def build_wildchat_workload(scale: float = 1.0, *, seed: int = 1,
                            conversations_per_client: int = 2,
                            stream: bool = False) -> WorkloadSpec:
    """WildChat-like: 40 US clients, 30 in Europe and Asia, region-local users."""
    clients = {
        "us": _scaled(40, scale),
        "eu": _scaled(30, scale),
        "asia": _scaled(30, scale),
    }
    programs_by_region: Dict[str, ProgramsLike] = {}
    for region, num_clients in clients.items():
        config = ConversationConfig(
            regions=(region,),
            users_per_region=num_clients,
            conversations_per_user=conversations_per_client,
            turns_range=(2, 6),
            lengths=WILDCHAT_LIKE,
            shared_templates=4,
            template_adoption=0.3,
            seed=seed + zlib.crc32(region.encode("utf-8")) % 1000,
        )
        if stream:
            programs_by_region[region] = _conversation_stream(config, region)
        else:
            programs_by_region[region] = ConversationWorkload(config).generate_programs()
    return WorkloadSpec(
        name="wildchat",
        programs_by_region=programs_by_region,
        clients_per_region=clients,
        hash_key="user",
    )


def build_tot_workload(scale: float = 1.0, *, seed: int = 2,
                       trees_per_client: int = 4,
                       stream: bool = False) -> WorkloadSpec:
    """Tree-of-Thoughts (2-branch, depth 4): 40 US clients, 20 EU, 20 Asia."""
    clients = {
        "us": _scaled(40, scale),
        "eu": _scaled(20, scale),
        "asia": _scaled(20, scale),
    }
    config = TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=seed)
    if stream:
        # Legacy order: one shared RNG generates us, then eu, then asia --
        # the counts tuple lets each region's stream replay that order.
        counts = tuple(
            (region, count * trees_per_client) for region, count in clients.items()
        )
        programs_by_region: Dict[str, ProgramsLike] = {
            region: ProgramStream(
                factory="tree-of-thoughts",
                region=region,
                num_programs=count * trees_per_client,
                kwargs=(("config", config), ("counts", counts)),
            )
            for region, count in clients.items()
        }
    else:
        generator = TreeOfThoughtsWorkload(config)
        programs_by_region = {
            region: generator.generate_programs(count * trees_per_client, region)
            for region, count in clients.items()
        }
    return WorkloadSpec(
        name="tree-of-thoughts",
        programs_by_region=programs_by_region,
        clients_per_region=clients,
        hash_key="session",
    )


def build_mixed_tree_workload(scale: float = 1.0, *, seed: int = 3,
                              trees_per_client: int = 4,
                              stream: bool = False) -> WorkloadSpec:
    """Mixed Tree: the US runs two clients with large 4-branch trees while
    Europe and Asia keep running 2-branch trees with 20 clients each."""
    big_clients = max(1, int(round(2 * max(scale, 0.5))))
    small_clients = _scaled(20, scale)
    big_config = TreeOfThoughtsConfig(branching_factor=4, depth=4, seed=seed)
    small_config = TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=seed + 1)
    big_count = big_clients * trees_per_client
    small_count = small_clients * trees_per_client
    if stream:
        # The big (US) trees come from their own workload instance; the eu
        # and asia trees share the small instance's RNG in that order.
        small_counts = (("eu", small_count), ("asia", small_count))
        programs_by_region: Dict[str, ProgramsLike] = {
            "us": ProgramStream(
                factory="tree-of-thoughts",
                region="us",
                num_programs=big_count,
                kwargs=(
                    ("config", big_config),
                    ("counts", (("us", big_count),)),
                    ("user_prefix", "tot4-user"),
                ),
            ),
        }
        for region in ("eu", "asia"):
            programs_by_region[region] = ProgramStream(
                factory="tree-of-thoughts",
                region=region,
                num_programs=small_count,
                kwargs=(("config", small_config), ("counts", small_counts)),
            )
    else:
        big = TreeOfThoughtsWorkload(big_config)
        small = TreeOfThoughtsWorkload(small_config)
        programs_by_region = {
            "us": big.generate_programs(big_count, "us", user_prefix="tot4-user"),
            "eu": small.generate_programs(small_count, "eu"),
            "asia": small.generate_programs(small_count, "asia"),
        }
    return WorkloadSpec(
        name="mixed-tree",
        programs_by_region=programs_by_region,
        clients_per_region={"us": big_clients, "eu": small_clients, "asia": small_clients},
        hash_key="session",
    )


MACRO_WORKLOAD_BUILDERS = {
    "chatbot-arena": build_arena_workload,
    "wildchat": build_wildchat_workload,
    "tree-of-thoughts": build_tot_workload,
    "mixed-tree": build_mixed_tree_workload,
}
