"""Builders for the evaluation workloads (§5.1).

Each builder returns a :class:`WorkloadSpec` matching one of the paper's
macro-benchmark configurations, with a ``scale`` parameter that shrinks the
client counts proportionally so the same scenario can run as a quick unit
test (scale ~0.05), a benchmark (~0.2) or a full-fidelity experiment (1.0).
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List

from ..workloads import (
    ARENA_LIKE,
    WILDCHAT_LIKE,
    ConversationConfig,
    ConversationWorkload,
    Program,
    TreeOfThoughtsConfig,
    TreeOfThoughtsWorkload,
)
from .config import WorkloadSpec

__all__ = [
    "build_arena_workload",
    "build_wildchat_workload",
    "build_tot_workload",
    "build_mixed_tree_workload",
    "MACRO_WORKLOAD_BUILDERS",
]

_REGIONS = ("us", "eu", "asia")


def _scaled(count: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(count * scale)))


def build_arena_workload(scale: float = 1.0, *, seed: int = 0,
                         conversations_per_client: int = 2) -> WorkloadSpec:
    """ChatBot-Arena-like: equal client counts, 80 conversations per region."""
    clients = _scaled(80, scale)
    config = ConversationConfig(
        regions=_REGIONS,
        users_per_region=clients,
        conversations_per_user=conversations_per_client,
        turns_range=(2, 5),
        lengths=ARENA_LIKE,
        shared_templates=6,
        template_adoption=0.5,
        seed=seed,
    )
    workload = ConversationWorkload(config)
    return WorkloadSpec(
        name="chatbot-arena",
        programs_by_region=workload.programs_by_region(),
        clients_per_region={region: clients for region in _REGIONS},
        hash_key="user",
    )


def build_wildchat_workload(scale: float = 1.0, *, seed: int = 1,
                            conversations_per_client: int = 2) -> WorkloadSpec:
    """WildChat-like: 40 US clients, 30 in Europe and Asia, region-local users."""
    clients = {
        "us": _scaled(40, scale),
        "eu": _scaled(30, scale),
        "asia": _scaled(30, scale),
    }
    programs_by_region: Dict[str, List[Program]] = {}
    for region, num_clients in clients.items():
        config = ConversationConfig(
            regions=(region,),
            users_per_region=num_clients,
            conversations_per_user=conversations_per_client,
            turns_range=(2, 6),
            lengths=WILDCHAT_LIKE,
            shared_templates=4,
            template_adoption=0.3,
            seed=seed + zlib.crc32(region.encode("utf-8")) % 1000,
        )
        workload = ConversationWorkload(config)
        programs_by_region[region] = workload.generate_programs()
    return WorkloadSpec(
        name="wildchat",
        programs_by_region=programs_by_region,
        clients_per_region=clients,
        hash_key="user",
    )


def build_tot_workload(scale: float = 1.0, *, seed: int = 2,
                       trees_per_client: int = 4) -> WorkloadSpec:
    """Tree-of-Thoughts (2-branch, depth 4): 40 US clients, 20 EU, 20 Asia."""
    clients = {
        "us": _scaled(40, scale),
        "eu": _scaled(20, scale),
        "asia": _scaled(20, scale),
    }
    generator = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=seed))
    programs_by_region = {
        region: generator.generate_programs(count * trees_per_client, region)
        for region, count in clients.items()
    }
    return WorkloadSpec(
        name="tree-of-thoughts",
        programs_by_region=programs_by_region,
        clients_per_region=clients,
        hash_key="session",
    )


def build_mixed_tree_workload(scale: float = 1.0, *, seed: int = 3,
                              trees_per_client: int = 4) -> WorkloadSpec:
    """Mixed Tree: the US runs two clients with large 4-branch trees while
    Europe and Asia keep running 2-branch trees with 20 clients each."""
    big_clients = max(1, int(round(2 * max(scale, 0.5))))
    small_clients = _scaled(20, scale)
    big = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=4, depth=4, seed=seed))
    small = TreeOfThoughtsWorkload(TreeOfThoughtsConfig(branching_factor=2, depth=4, seed=seed + 1))
    programs_by_region = {
        "us": big.generate_programs(big_clients * trees_per_client, "us", user_prefix="tot4-user"),
        "eu": small.generate_programs(small_clients * trees_per_client, "eu"),
        "asia": small.generate_programs(small_clients * trees_per_client, "asia"),
    }
    return WorkloadSpec(
        name="mixed-tree",
        programs_by_region=programs_by_region,
        clients_per_region={"us": big_clients, "eu": small_clients, "asia": small_clients},
        hash_key="session",
    )


MACRO_WORKLOAD_BUILDERS = {
    "chatbot-arena": build_arena_workload,
    "wildchat": build_wildchat_workload,
    "tree-of-thoughts": build_tot_workload,
    "mixed-tree": build_mixed_tree_workload,
}
