"""Sweep-result renderers behind ``SweepResult.plot_*``.

Everything here is stdlib-only: text tables and ASCII bar charts for
terminals/logs, CSV for spreadsheets and external plotting.  Matplotlib is
strictly optional -- :func:`render_figure` imports it lazily and raises a
clear error when it is absent, so the simulator keeps its
no-third-party-dependencies property.

Metrics are addressed by dotted attribute path into
:class:`~repro.metrics.RunMetrics` -- ``"throughput_tokens_per_s"``,
``"ttft.p90"``, ``"e2e_latency.p50"``, ``"cache_hit_rate"`` -- so every
recorded number is plottable without a renderer edit.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

__all__ = [
    "metric_value",
    "render_table",
    "render_bars",
    "render_csv",
    "render_figure",
]

#: Default CSV column set (a useful superset of what the figure drivers log).
DEFAULT_CSV_METRICS = (
    "throughput_tokens_per_s",
    "output_tokens_per_s",
    "requests_per_s",
    "num_completed",
    "ttft.p50",
    "ttft.p90",
    "e2e_latency.p50",
    "e2e_latency.p90",
    "cache_hit_rate",
    "cross_region_fraction",
    "replica_load_imbalance",
)


def metric_value(run, metric: str) -> float:
    """Resolve a dotted metric path against a :class:`RunMetrics` record."""
    obj = run
    for part in metric.split("."):
        obj = getattr(obj, part)
        if obj is None:
            raise ValueError(
                f"metric {metric!r} is not recorded on this run (hit None at {part!r})"
            )
    return float(obj)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_table(result, metric: str = "throughput_tokens_per_s") -> str:
    """Workload x system text grid of one metric."""
    workloads = result.workloads()
    systems: List[str] = []
    for workload in workloads:
        for system in result.systems(workload):
            if system not in systems:
                systems.append(system)
    rows = [["workload \\ " + metric] + systems]
    for workload in workloads:
        row = [workload]
        for system in systems:
            try:
                row.append(_fmt(metric_value(result.get(workload, system), metric)))
            except (KeyError, ValueError, AttributeError):
                row.append("-")
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_bars(
    result,
    metric: str = "throughput_tokens_per_s",
    *,
    workload: Optional[str] = None,
    width: int = 40,
) -> str:
    """ASCII horizontal bar chart of one metric, one bar per system.

    ``workload=None`` renders every workload as its own block.  Bars are
    scaled to the largest value in the block, so relative comparison (the
    thing a terminal chart is for) stays readable at any magnitude.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    workloads = [workload] if workload is not None else result.workloads()
    lines: List[str] = []
    for name in workloads:
        values = []
        for system in result.systems(name):
            try:
                values.append((system, metric_value(result.get(name, system), metric)))
            except (ValueError, AttributeError):
                continue
        if not values:
            continue
        peak = max(value for _, value in values)
        label_width = max(len(system) for system, _ in values)
        lines.append(f"== {name}: {metric} ==")
        for system, value in values:
            bar = "#" * (round(width * value / peak) if peak > 0 else 0)
            lines.append(f"  {system.ljust(label_width)}  {bar} {_fmt(value)}")
    return "\n".join(lines)


def render_csv(result, metrics: Sequence[str] = DEFAULT_CSV_METRICS) -> str:
    """CSV of every (workload, system[, seed]) cell's chosen metrics.

    Multi-seed sweeps emit one row per seed; single-seed sweeps one row per
    cell with an empty seed column.  Uses the stdlib :mod:`csv` writer, so
    the output round-trips through any spreadsheet.
    """
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["workload", "system", "seed"] + list(metrics))

    def row_for(workload: str, system: str, seed, run) -> List[object]:
        cells: List[object] = [workload, system, "" if seed is None else seed]
        for metric in metrics:
            try:
                cells.append(metric_value(run, metric))
            except (ValueError, AttributeError):
                cells.append("")
        return cells

    for workload in result.workloads():
        for system in result.systems(workload):
            per_seed = result.runs_for(workload, system)
            if per_seed:
                for seed, run in per_seed.items():
                    writer.writerow(row_for(workload, system, seed, run))
            else:
                writer.writerow(row_for(workload, system, None, result.get(workload, system)))
    return buffer.getvalue()


def render_figure(
    result,
    metric: str = "throughput_tokens_per_s",
    *,
    path: Optional[str] = None,
):
    """Grouped bar chart via matplotlib (optional dependency).

    Returns the figure object; ``path`` additionally saves it.  Raises
    :class:`RuntimeError` when matplotlib is not installed -- the text/CSV
    renderers above are the dependency-free alternatives.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise RuntimeError(
            "matplotlib is not installed; use plot_table()/plot_bars()/plot_csv() "
            "for the dependency-free renderers"
        ) from exc

    workloads = result.workloads()
    systems: List[str] = []
    for workload in workloads:
        for system in result.systems(workload):
            if system not in systems:
                systems.append(system)

    fig, ax = plt.subplots(figsize=(1.5 + 1.2 * len(workloads) * len(systems) / 4, 4))
    group_width = 0.8
    bar_width = group_width / max(1, len(systems))
    for offset, system in enumerate(systems):
        xs, ys = [], []
        for index, workload in enumerate(workloads):
            try:
                ys.append(metric_value(result.get(workload, system), metric))
            except (KeyError, ValueError, AttributeError):
                continue
            xs.append(index - group_width / 2 + (offset + 0.5) * bar_width)
        ax.bar(xs, ys, width=bar_width, label=system)
    ax.set_xticks(range(len(workloads)))
    ax.set_xticklabels(workloads)
    ax.set_ylabel(metric)
    ax.legend(fontsize="small")
    fig.tight_layout()
    if path is not None:
        fig.savefig(path, dpi=150)
    return fig
