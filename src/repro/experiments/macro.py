"""Fig. 8 macro-benchmark: throughput, TTFT and end-to-end latency of every
system on every workload.

The paper runs up to 12 single-L4 replicas across three regions with clients
in all three regions and compares GKE Gateway, Round Robin, Least Load,
Consistent Hashing, the SGLang Router and both SkyWalker variants.  The
``scale`` knob shrinks client counts and replica counts together so the same
code drives quick CI runs and full-fidelity reproductions.

``seeds=[...]`` repeats the whole grid: each seed gets its own workload
build (fresh traffic, not just fresh network jitter) and every
(workload, system, seed) cell fans out through the
:class:`~repro.experiments.sweep.SweepExecutor` process pool.  The
per-seed runs aggregate into mean/95%-CI statistics
(:meth:`MacroResult.aggregate`), which is what turns the figure's
"1.12-2.06x over the baselines" claims into interval statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..faults import FaultsLike
from ..metrics import AggregateMetrics, RunMetrics, SweepReport, aggregate_cell
from .config import ALL_SYSTEMS, ClusterConfig
from .registry import REGISTRY
from .sweep import SweepExecutor, SweepTask, check_unique_system_names, normalise_seeds
from .workloads import MACRO_WORKLOAD_BUILDERS

__all__ = ["MacroResult", "run_macro_benchmark", "default_macro_cluster"]


@dataclass
class MacroResult:
    """All runs of one macro-benchmark sweep, indexed by (system, workload).

    :attr:`runs` holds the base-seed run of each cell (for a single-seed
    benchmark that is simply *the* run, bit-identical to the historical
    output); :attr:`seed_runs` keeps every per-seed run and feeds
    :meth:`aggregate`.
    """

    runs: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)
    #: Per-seed runs: ``seed_runs[workload][system][seed]``.
    seed_runs: Dict[str, Dict[str, Dict[int, RunMetrics]]] = field(default_factory=dict)

    def add(self, metrics: RunMetrics) -> None:
        if metrics.seed is None:
            self.runs.setdefault(metrics.workload, {})[metrics.system] = metrics
            return
        self.seed_runs.setdefault(metrics.workload, {}).setdefault(metrics.system, {})[
            metrics.seed
        ] = metrics
        self.runs.setdefault(metrics.workload, {}).setdefault(metrics.system, metrics)

    def workloads(self) -> List[str]:
        return list(self.runs)

    def systems(self, workload: str) -> List[str]:
        return list(self.runs[workload])

    def get(self, workload: str, system: str, seed: Optional[int] = None) -> RunMetrics:
        if seed is None:
            return self.runs[workload][system]
        return self.seed_runs[workload][system][seed]

    def aggregate(self, workload: str, system: str) -> AggregateMetrics:
        """Mean/stdev/95% CI of one cell across its seeds (degenerate n=1
        aggregate for single-seed benchmarks)."""
        return aggregate_cell(
            self.seed_runs.get(workload, {}).get(system), self.runs[workload][system]
        )

    def report(self) -> SweepReport:
        report = SweepReport()
        for workload in self.workloads():
            for system in self.systems(workload):
                report.add(self.aggregate(workload, system))
        return report

    def throughput_table(self) -> Dict[str, Dict[str, float]]:
        return {
            workload: {system: m.throughput_tokens_per_s for system, m in row.items()}
            for workload, row in self.runs.items()
        }

    def speedup_over_baselines(self, workload: str, system: str = "skywalker") -> Dict[str, float]:
        """Throughput of ``system`` relative to every other system (paper
        reports 1.12-2.06x over the baselines), on the base-seed runs;
        use :meth:`aggregate` when an interval statement is needed."""
        row = self.runs[workload]
        target = row[system].throughput_tokens_per_s
        return {
            other: target / metrics.throughput_tokens_per_s
            for other, metrics in row.items()
            if other != system and metrics.throughput_tokens_per_s > 0
        }

    def format_report(self) -> str:
        lines: List[str] = []
        for workload, row in self.runs.items():
            lines.append(f"== {workload} ==")
            for system, metrics in row.items():
                lines.append("  " + metrics.format_row())
        if self.seed_runs and any(
            len(per_seed) > 1
            for row in self.seed_runs.values()
            for per_seed in row.values()
        ):
            lines.append("== aggregate (mean±95% CI) ==")
            lines.append(self.report().format_table())
        return "\n".join(lines)


def default_macro_cluster(scale: float = 1.0, *, record_utilization: bool = False) -> ClusterConfig:
    """The paper's 12-replica, three-region cluster (scaled)."""
    per_region = max(1, int(round(4 * scale)))
    return ClusterConfig(
        replicas_per_region={"us": per_region, "eu": per_region, "asia": per_region},
        record_utilization=record_utilization,
    )


def run_macro_benchmark(
    *,
    systems: Sequence[str] = ALL_SYSTEMS,
    workloads: Sequence[str] = ("chatbot-arena", "wildchat", "tree-of-thoughts", "mixed-tree"),
    scale: float = 0.2,
    duration_s: float = 120.0,
    cluster: Optional[ClusterConfig] = None,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    workers: int = 1,
    faults: FaultsLike = None,
) -> MacroResult:
    """Run the Fig. 8 sweep and return all metrics.

    Per seed, each workload is generated once (with that seed) and replayed
    across every system -- fresh request state per run, identical traffic
    within the seed.  ``seeds=[...]`` fans every (workload, system, seed)
    cell through the sweep executor; ``seeds=[s]`` is bit-identical to the
    single-seed ``seed=s`` run.  ``workers`` > 1 distributes the cells over
    that many processes; metrics are identical to the serial run for the
    same seeds.  ``faults`` applies one deterministic fault schedule to
    every cell, turning the macro grid into a resilience comparison (the
    Fig. 11 failover benchmark runs exactly this).
    """
    cluster = cluster or default_macro_cluster(scale)
    specs = [REGISTRY.spec(kind) for kind in systems]
    check_unique_system_names(specs)
    seed_list = normalise_seeds(seed, seeds)
    tasks: List[SweepTask] = []
    for cell_seed in seed_list:
        built = [
            MACRO_WORKLOAD_BUILDERS[workload_name](scale=scale, seed=cell_seed)
            for workload_name in workloads
        ]
        for workload in built:
            for spec in specs:
                tasks.append(
                    SweepTask(
                        system=spec,
                        workload=workload,
                        cluster=cluster,
                        duration_s=duration_s,
                        seed=cell_seed,
                        faults=faults,
                    )
                )
    sweep = SweepExecutor(workers=workers).run_cells(tasks)
    result = MacroResult()
    for workload in sweep.workloads():
        for system in sweep.systems(workload):
            # run_sweep_task stamps every run's seed, so runs_for is never
            # empty and insertion order (base seed first) carries over.
            for metrics in sweep.runs_for(workload, system).values():
                result.add(metrics)
    return result
