"""Fig. 8 macro-benchmark: throughput, TTFT and end-to-end latency of every
system on every workload.

The paper runs up to 12 single-L4 replicas across three regions with clients
in all three regions and compares GKE Gateway, Round Robin, Least Load,
Consistent Hashing, the SGLang Router and both SkyWalker variants.  The
``scale`` knob shrinks client counts and replica counts together so the same
code drives quick CI runs and full-fidelity reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..metrics import RunMetrics
from .config import ALL_SYSTEMS, ClusterConfig
from .registry import REGISTRY
from .runner import run_sweep
from .workloads import MACRO_WORKLOAD_BUILDERS

__all__ = ["MacroResult", "run_macro_benchmark", "default_macro_cluster"]


@dataclass
class MacroResult:
    """All runs of one macro-benchmark sweep, indexed by (system, workload)."""

    runs: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)

    def add(self, metrics: RunMetrics) -> None:
        self.runs.setdefault(metrics.workload, {})[metrics.system] = metrics

    def workloads(self) -> List[str]:
        return list(self.runs)

    def systems(self, workload: str) -> List[str]:
        return list(self.runs[workload])

    def get(self, workload: str, system: str) -> RunMetrics:
        return self.runs[workload][system]

    def throughput_table(self) -> Dict[str, Dict[str, float]]:
        return {
            workload: {system: m.throughput_tokens_per_s for system, m in row.items()}
            for workload, row in self.runs.items()
        }

    def speedup_over_baselines(self, workload: str, system: str = "skywalker") -> Dict[str, float]:
        """Throughput of ``system`` relative to every other system (paper
        reports 1.12-2.06x over the baselines)."""
        row = self.runs[workload]
        target = row[system].throughput_tokens_per_s
        return {
            other: target / metrics.throughput_tokens_per_s
            for other, metrics in row.items()
            if other != system and metrics.throughput_tokens_per_s > 0
        }

    def format_report(self) -> str:
        lines: List[str] = []
        for workload, row in self.runs.items():
            lines.append(f"== {workload} ==")
            for system, metrics in row.items():
                lines.append("  " + metrics.format_row())
        return "\n".join(lines)


def default_macro_cluster(scale: float = 1.0, *, record_utilization: bool = False) -> ClusterConfig:
    """The paper's 12-replica, three-region cluster (scaled)."""
    per_region = max(1, int(round(4 * scale)))
    return ClusterConfig(
        replicas_per_region={"us": per_region, "eu": per_region, "asia": per_region},
        record_utilization=record_utilization,
    )


def run_macro_benchmark(
    *,
    systems: Sequence[str] = ALL_SYSTEMS,
    workloads: Sequence[str] = ("chatbot-arena", "wildchat", "tree-of-thoughts", "mixed-tree"),
    scale: float = 0.2,
    duration_s: float = 120.0,
    cluster: Optional[ClusterConfig] = None,
    seed: int = 0,
    workers: int = 1,
) -> MacroResult:
    """Run the Fig. 8 sweep and return all metrics.

    Each workload is generated once and replayed across every system via
    ``run_sweep`` (fresh request state per run, identical traffic).
    ``workers`` > 1 distributes the (workload, system) cells over that many
    processes; metrics are identical to the serial run for the same seed.
    """
    cluster = cluster or default_macro_cluster(scale)
    specs = [REGISTRY.spec(kind) for kind in systems]
    built = [
        MACRO_WORKLOAD_BUILDERS[workload_name](scale=scale, seed=seed)
        for workload_name in workloads
    ]
    sweep = run_sweep(
        specs,
        built,
        cluster=cluster,
        duration_s=duration_s,
        seed=seed,
        workers=workers,
    )
    result = MacroResult()
    for row in sweep.runs.values():
        for metrics in row.values():
            result.add(metrics)
    return result
