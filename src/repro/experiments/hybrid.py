"""``skywalker-hybrid``: a system registered purely through the public API.

This module is the registry's extensibility proof: it adds a new balancer
system -- prefix-tree routing whose *match score* is discounted by how much
busier the matched replica is than the lightest one, with a least-load
fallback when the score drops below threshold -- without touching the
runner, the registry internals, or any central kind enum.  Everything it
uses (``register_system``, ``build_regional_mesh``, the SkyWalker balancer
and its ``selection_policy`` plug-in point) is public.

Compared to plain SkyWalker, which only abandons prefix affinity when the
preferred replica is *severely* imbalanced (a hard threshold pair), the
hybrid policy trades affinity against load continuously: a strong prefix
match tolerates some extra load, a marginal one does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import PrefixTreeSelection, SkyWalkerBalancer
from ..core.interface import Balancer
from ..replica import ReplicaServer
from ..workloads.request import Request
from .registry import BuildContext, build_regional_mesh, register_system
from .systems import SkyWalkerConfig, build_skywalker_region

__all__ = ["HybridSelection", "SkyWalkerHybridConfig"]


class HybridSelection(PrefixTreeSelection):
    """Prefix-tree routing scored against load, with least-load fallback.

    For the best prefix match the policy computes

    ``score = hit_ratio - load_weight * (load(match) - load(lightest))``

    and routes to the matched replica only when ``score`` clears
    ``match_threshold``; otherwise it falls back to the least-loaded
    available replica.  Cross-region peer selection is inherited from the
    prefix-tree policy (regional snapshots keep working unchanged).
    """

    routing = "hybrid"
    maintains_prefix_trees = True

    def __init__(self, match_threshold: float = 0.3, load_weight: float = 0.1) -> None:
        self.match_threshold = match_threshold
        self.load_weight = load_weight

    def select_replica(
        self, balancer: SkyWalkerBalancer, request: Request, candidates: List[ReplicaServer]
    ) -> ReplicaServer:
        by_name = {replica.name: replica for replica in candidates}
        match = balancer.replica_trie.best_target(request.prompt_tokens, by_name.keys())
        if match.target is not None:
            matched_load = balancer.estimated_load(by_name[match.target])
            lightest = min(balancer.estimated_load(replica) for replica in candidates)
            score = match.hit_ratio - self.load_weight * (matched_load - lightest)
            if score >= self.match_threshold:
                return by_name[match.target]
        return balancer.least_loaded(candidates)


@dataclass(frozen=True)
class SkyWalkerHybridConfig(SkyWalkerConfig):
    """SkyWalker knobs plus the hybrid score parameters."""

    kind: str = "skywalker-hybrid"
    #: Minimum load-discounted match score for affinity routing.
    hybrid_match_threshold: float = 0.3
    #: Outstanding-request penalty per unit of extra load on the match.
    hybrid_load_weight: float = 0.1


@register_system(
    "skywalker-hybrid",
    config=SkyWalkerHybridConfig,
    description="Prefix-tree routing with load-discounted match scores and least-load fallback",
)
def _build_skywalker_hybrid(spec: SkyWalkerHybridConfig, ctx: BuildContext) -> List[Balancer]:
    selection = HybridSelection(
        match_threshold=spec.hybrid_match_threshold,
        load_weight=spec.hybrid_load_weight,
    )
    return build_regional_mesh(
        ctx,
        lambda region: build_skywalker_region(
            spec, ctx, region, selection_policy=selection
        ),
    )
