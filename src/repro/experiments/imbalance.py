"""Fig. 4b: KV-memory imbalance across replicas under Round Robin.

Two replicas, one region, a multi-turn chat workload, round-robin routing:
because output lengths are unpredictable, the replicas' KV-memory
utilisation diverges even though they receive exactly the same number of
requests.  The paper observes a peak memory difference of up to 2.64x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads import ConversationConfig, ConversationWorkload, WILDCHAT_LIKE
from .config import ClusterConfig, ExperimentConfig, WorkloadSpec
from .runner import run_experiment
from .systems import CentralizedConfig

__all__ = ["ImbalanceResult", "run_imbalance_experiment"]


@dataclass
class ImbalanceResult:
    """Per-replica memory-utilisation timelines and their peak ratio."""

    timelines: Dict[str, List[Tuple[float, float]]]
    peak_utilization: Dict[str, float]

    @property
    def peak_ratio(self) -> float:
        peaks = [p for p in self.peak_utilization.values() if p > 0]
        if len(peaks) < 2:
            return 1.0
        return max(peaks) / min(peaks)


def run_imbalance_experiment(
    *,
    clients: int = 12,
    replicas: int = 2,
    duration_s: float = 90.0,
    region: str = "us",
    seed: int = 11,
) -> ImbalanceResult:
    """Round-robin over ``replicas`` replicas; record memory utilisation."""
    config = ConversationConfig(
        regions=(region,),
        users_per_region=clients,
        conversations_per_user=3,
        turns_range=(2, 6),
        lengths=WILDCHAT_LIKE,
        seed=seed,
    )
    generator = ConversationWorkload(config)
    workload = WorkloadSpec(
        name="imbalance-roundrobin",
        programs_by_region={region: generator.generate_programs()},
        clients_per_region={region: clients},
        hash_key="user",
    )
    experiment = ExperimentConfig(
        system=CentralizedConfig(kind="round-robin", central_region=region),
        cluster=ClusterConfig(
            replicas_per_region={region: replicas},
            record_utilization=True,
        ),
        duration_s=duration_s,
        seed=seed,
    )
    outcome = run_experiment(experiment, workload)
    timelines = {
        replica.name: list(replica.stats.utilization_samples)
        for replica in outcome.deployment.replicas
    }
    peaks = {
        name: max((u for _, u in samples), default=0.0) for name, samples in timelines.items()
    }
    return ImbalanceResult(timelines=timelines, peak_utilization=peaks)
