"""Process-parallel sweep execution.

The paper's headline results (Fig. 8 macro comparison, Fig. 9 pushing
ablation, Fig. 10 region-local) are all *sweeps*: one workload replayed
across many system variants, optionally repeated across seeds
(``seeds=[...]``) for mean/95%-CI statistics.  Every (workload, system,
seed) cell is an independent simulation -- its own
:class:`~repro.sim.Environment`, its own seeded network -- so the cells
parallelise perfectly across processes.

:class:`SweepExecutor` runs each cell in its own worker process (stdlib
``concurrent.futures.ProcessPoolExecutor``); ``workers=1`` falls back to the
plain in-process loop.  Both paths execute the *same* per-cell function on
the *same* picklable task descriptions, so for a fixed seed the parallel
sweep is bit-identical to the serial one -- parallelism only buys
wall-clock, never changes results.

What makes the cells shippable to a worker is that every experiment
description is *data*: typed system specs are frozen dataclasses whose
pushing policy, routing constraint and selection policy are plain
registered *names*, resolved against the corresponding registry inside the
worker when the system is built (:func:`repro.core.pushing.make_pushing_policy`,
:func:`repro.core.policies.make_constraint`,
:func:`repro.core.selection.make_selection_policy`).  Third-party systems
and policies registered via the ``@register_*`` decorators work unchanged:
the executor explicitly uses the ``fork`` start method wherever the
platform offers it, so the workers inherit the parent's registries as-is.
On spawn/forkserver platforms each worker instead runs a bootstrap
initializer that re-imports every module that registered a factory in the
parent (systems, pushing/selection/constraint policies, fault schedules,
offload/admission policies), re-populating the registries there.  The one
remaining caveat is plugins defined in ``__main__`` (a script body or
REPL): those cannot be re-imported and need fork, or a real module.

Executors also expose a generic :meth:`SweepExecutor.map` for benchmark
drivers whose cells need post-processing beyond :class:`RunMetrics`
(e.g. the Fig. 10 sweep computes per-region tail latencies inside the
worker) -- any picklable module-level function works.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..faults import FaultsLike
from ..metrics import RunMetrics
from .config import ClusterConfig, ExperimentConfig, WorkloadSpec
from .registry import SystemSpec
from .runner import SweepResult, run_experiment

__all__ = [
    "SweepTask",
    "SweepExecutor",
    "run_sweep_task",
    "normalise_seeds",
    "check_unique_system_names",
    "plugin_modules",
]

#: Historical alias from the era of the (now removed) ``SystemConfig`` shim.
SystemLike = SystemSpec
_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


@dataclass(frozen=True)
class SweepTask:
    """One (workload, system) cell of a sweep, fully described as data.

    Everything here is picklable: the system is a typed spec carrying only
    names and scalars, and the workload is plain programs/requests.  A
    worker process needs nothing else to reproduce the cell exactly.
    """

    system: SystemLike
    workload: WorkloadSpec
    cluster: ClusterConfig
    duration_s: float = 120.0
    seed: int = 0
    network_jitter: float = 0.05
    #: Optional fault schedule for the cell -- a picklable
    #: :class:`~repro.faults.FaultSchedule` of data-only specs, or the name
    #: of a registered schedule factory (resolved inside the worker).
    faults: FaultsLike = None


def run_sweep_task(task: SweepTask) -> RunMetrics:
    """Run one sweep cell and return its metrics.

    Module-level (hence picklable) worker entry point.  The workload is
    re-instantiated via :meth:`WorkloadSpec.fresh_copy` so the cell never
    sees request state mutated by a previous run of the same spec -- the
    serial path reuses one workload object across cells, the parallel path
    re-runs this exact function in a forked process; either way the traffic
    is identical.
    """
    config = ExperimentConfig(
        system=task.system,
        cluster=task.cluster,
        duration_s=task.duration_s,
        seed=task.seed,
        network_jitter=task.network_jitter,
        faults=task.faults,
    )
    start = time.perf_counter()
    metrics = run_experiment(config, task.workload.fresh_copy()).metrics
    # Recorded on the metrics object (picklable, so it survives the trip
    # back from a worker process) but excluded from to_dict(): wall-clock
    # is where-the-time-went telemetry, not part of the result identity,
    # and the seed is grouping bookkeeping for multi-seed aggregation.
    metrics.wall_clock_s = time.perf_counter() - start
    metrics.seed = task.seed
    return metrics


def plugin_modules() -> Tuple[str, ...]:
    """Defining modules of every factory currently registered, sorted.

    This is the spawn-mode worker bootstrap's shopping list: a spawned (or
    forkserver) worker starts from a fresh interpreter whose registries
    hold only the built-ins, so the executor re-imports these modules there
    and the plugins re-register themselves exactly as they did in the
    parent.  Forked workers inherit the registries and skip all of this.

    ``__main__`` registrations are skipped -- a script body cannot be
    re-imported by name (importing it would re-run the script); plugins
    that must survive spawn need to live in a real module.
    """
    from ..core.policies import _CONSTRAINTS
    from ..core.pushing import _PUSHING_POLICIES
    from ..core.selection import _SELECTION_POLICIES
    from ..faults.schedule import _SCHEDULES
    from ..faults.spec import _FAULTS
    from ..mem.policies import admission_policy_factories, offload_policy_factories
    from ..net.graph import _WAN_TOPOLOGIES
    from ..net.routing import _ROUTING_POLICIES
    from .registry import REGISTRY

    factories: List[object] = []
    for registry in (
        _PUSHING_POLICIES,
        _SELECTION_POLICIES,
        _CONSTRAINTS,
        _SCHEDULES,
        _WAN_TOPOLOGIES,
        _ROUTING_POLICIES,
    ):
        factories.extend(registry._factories.values())
    factories.extend(offload_policy_factories())
    factories.extend(admission_policy_factories())
    for name in REGISTRY.names():
        entry = REGISTRY.get(name)
        factories.append(entry.builder)
        factories.append(entry.config_cls)
    for name in _FAULTS.names():
        entry = _FAULTS.get(name)
        factories.append(entry.applier)
        factories.append(entry.spec_cls)
    modules = {getattr(factory, "__module__", None) for factory in factories}
    modules.discard(None)
    modules.discard("__main__")
    return tuple(sorted(modules))


def _bootstrap_worker(modules: Tuple[str, ...]) -> None:
    """Worker-process initializer: re-import the plugin-defining modules.

    Runs once per spawned worker, before any task.  Import errors propagate
    (the pool surfaces them as a ``BrokenProcessPool``): a module that was
    importable in the parent but is not in a worker is a real environment
    problem, not something to paper over with a silently missing plugin.
    """
    for name in modules:
        importlib.import_module(name)


def check_unique_system_names(systems: Sequence[SystemLike]) -> None:
    """Reject sweeps whose variants would collide on display name."""
    names = [system.name for system in systems]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            f"system variants share display name(s) {duplicates}; "
            "set label=... on each variant to disambiguate"
        )


def normalise_seeds(seed: int, seeds: Optional[Sequence[int]]) -> List[int]:
    """Resolve the (legacy ``seed``, new ``seeds=[...]``) parameter pair.

    ``seeds=None`` means the historical single-seed behaviour: one cell per
    (workload, system), simulated with ``seed``.  An explicit list fans
    every cell out across its entries; it must be non-empty and free of
    duplicates (a repeated seed would silently collapse to one sample and
    understate the confidence interval).
    """
    if seeds is None:
        return [seed]
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("seeds must be a non-empty sequence (or None for the single-seed path)")
    if len(set(seed_list)) != len(seed_list):
        raise ValueError(f"seeds contains duplicates: {seed_list}; each seed is one independent trial")
    return seed_list


class SweepExecutor:
    """Runs sweep cells, optionally across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs every cell
        in-process, exactly like the historical serial loop.
    mp_context:
        Optional :mod:`multiprocessing` context.  Defaults to ``fork``
        wherever available (it carries parent-process plugin registrations
        into the workers for free), falling back to the platform default
        otherwise.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def map(
        self, fn: Callable[[_Task], _Result], tasks: Iterable[_Task]
    ) -> List[_Result]:
        """Apply ``fn`` to every task, preserving task order in the result.

        With ``workers == 1`` (or fewer than two tasks) this is a plain
        in-process loop; otherwise tasks are distributed over a process
        pool.  ``fn`` and the tasks must be picklable (module-level
        function, data-only task objects).
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) < 2:
            return [fn(task) for task in tasks]
        context = self.mp_context
        if context is None:
            # Prefer fork explicitly (the platform default may be spawn or
            # forkserver): forked workers inherit the parent's registries,
            # so third-party systems/policies registered at runtime resolve
            # by name inside the worker without any re-import dance.
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
        pool_kwargs = {}
        if context.get_start_method() != "fork":
            # Spawned workers start from empty registries; hand each one
            # the modules whose import re-registers the parent's plugins.
            pool_kwargs["initializer"] = _bootstrap_worker
            pool_kwargs["initargs"] = (plugin_modules(),)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks)), mp_context=context, **pool_kwargs
        ) as pool:
            return list(pool.map(fn, tasks))

    # ------------------------------------------------------------------
    def run_cells(self, tasks: Sequence[SweepTask]) -> SweepResult:
        """Run pre-built sweep cells and assemble a :class:`SweepResult`.

        The figure-level drivers use this when their cells cannot come from
        the plain (systems x workloads x seeds) cross product -- e.g. the
        macro benchmark rebuilds its workloads per seed.  Task order
        matters for the legacy single-run view: the *first* task of each
        (workload, system) cell becomes its base-seed run, so per-cell
        seed order should match across calls that are compared.
        """
        result = SweepResult()
        for metrics in self.map(run_sweep_task, list(tasks)):
            result.add(metrics)
        return result

    # ------------------------------------------------------------------
    def run(
        self,
        systems: Sequence[SystemLike],
        workloads: Sequence[WorkloadSpec],
        *,
        cluster: Optional[ClusterConfig] = None,
        duration_s: float = 120.0,
        seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        network_jitter: float = 0.05,
        faults: FaultsLike = None,
    ) -> SweepResult:
        """Run every system variant against every workload (and seed).

        Each workload is built **once** by the caller and replayed across
        the system variants (fresh request state per cell), so variants see
        identical traffic without paying workload generation per run.

        ``seeds=[...]`` fans every (workload, system) cell out across the
        listed seeds -- the per-seed runs land in
        :attr:`SweepResult.seed_runs` and aggregate into mean/95%-CI
        statistics via :meth:`SweepResult.aggregate`.  Because the
        workloads are pre-built, the per-seed variation here is the
        simulation/network randomness; drivers that also want per-seed
        *traffic* (the macro and pushing benchmarks) rebuild their
        workloads per seed and go through :meth:`run_cells`.
        ``seeds=None`` (default) is the historical single-seed path, and
        ``seeds=[s]`` is bit-identical to ``seed=s``.

        ``faults`` applies one deterministic fault schedule (object or
        registered name) to every cell; ``None``/empty keeps the sweep
        bit-identical to the fault-free path.

        Results are indexed by each system's display name, so variants of
        the same kind must be disambiguated with ``label`` (otherwise later
        runs would silently overwrite earlier ones).
        """
        check_unique_system_names(systems)
        cluster = cluster or ClusterConfig()
        seed_list = normalise_seeds(seed, seeds)
        tasks = [
            SweepTask(
                system=system,
                workload=workload,
                cluster=cluster,
                duration_s=duration_s,
                seed=cell_seed,
                network_jitter=network_jitter,
                faults=faults,
            )
            for workload in workloads
            for system in systems
            for cell_seed in seed_list
        ]
        return self.run_cells(tasks)
