"""Experiment scenarios and runners for every figure in the paper's evaluation.

Systems are built through the pluggable registry (:mod:`.registry`): each
balancer family registers a builder and a typed config via
``@register_system``, and new systems (e.g. :mod:`.hybrid`'s
``skywalker-hybrid``) plug in without touching the runner.  Pushing
policies, routing constraints and selection policies resolve by name the
same way (``repro.core``'s ``register_pushing_policy`` /
``register_constraint`` / ``register_selection_policy``), which keeps every
experiment description picklable: :mod:`.sweep`'s :class:`SweepExecutor`
runs each (workload, system) cell of a sweep in its own worker process and
returns metrics bit-identical to the serial loop.
"""

from .config import (
    ALL_SYSTEMS,
    BASELINE_SYSTEMS,
    SYSTEM_KINDS,
    ClusterConfig,
    ExperimentConfig,
    WorkloadSpec,
)
from .diurnal_sweep import DiurnalSweepResult, build_skewed_workload, run_diurnal_sweep
from .hitrate import (
    SCENARIOS as HITRATE_SCENARIOS,
    HitRateComparison,
    HitRateScenario,
    build_scenario,
    evaluate_hit_rates,
    run_hitrate_benchmark,
)
from .hybrid import HybridSelection, SkyWalkerHybridConfig
from .imbalance import ImbalanceResult, run_imbalance_experiment
from .macro import MacroResult, default_macro_cluster, run_macro_benchmark
from .pushing import PushingResult, build_single_region_tot_workload, run_pushing_benchmark
from .registry import (
    REGISTRY,
    BuildContext,
    SystemEntry,
    SystemRegistry,
    SystemSpec,
    build_regional_mesh,
    register_system,
    registered_system_kinds,
)
from .runner import ExperimentResult, SweepResult, build_system, run_experiment, run_sweep
from .sweep import (
    SweepExecutor,
    SweepTask,
    check_unique_system_names,
    normalise_seeds,
    run_sweep_task,
)
from .systems import CentralizedConfig, GatewayConfig, SkyWalkerConfig
from .workloads import (
    MACRO_WORKLOAD_BUILDERS,
    build_arena_workload,
    build_mixed_tree_workload,
    build_tot_workload,
    build_wildchat_workload,
)

__all__ = [
    # registry API
    "REGISTRY",
    "SystemRegistry",
    "SystemEntry",
    "SystemSpec",
    "BuildContext",
    "register_system",
    "registered_system_kinds",
    "build_regional_mesh",
    # typed system configs
    "CentralizedConfig",
    "GatewayConfig",
    "SkyWalkerConfig",
    "SkyWalkerHybridConfig",
    "HybridSelection",
    # configuration
    "ClusterConfig",
    "WorkloadSpec",
    "ExperimentConfig",
    "SYSTEM_KINDS",
    "BASELINE_SYSTEMS",
    "ALL_SYSTEMS",
    # runners
    "ExperimentResult",
    "SweepResult",
    "SweepExecutor",
    "SweepTask",
    "run_sweep_task",
    "normalise_seeds",
    "check_unique_system_names",
    "run_experiment",
    "run_sweep",
    "build_system",
    "MacroResult",
    "run_macro_benchmark",
    "default_macro_cluster",
    "PushingResult",
    "run_pushing_benchmark",
    "build_single_region_tot_workload",
    "HitRateComparison",
    "HitRateScenario",
    "HITRATE_SCENARIOS",
    "build_scenario",
    "evaluate_hit_rates",
    "run_hitrate_benchmark",
    "ImbalanceResult",
    "run_imbalance_experiment",
    "DiurnalSweepResult",
    "run_diurnal_sweep",
    "build_skewed_workload",
    "MACRO_WORKLOAD_BUILDERS",
    "build_arena_workload",
    "build_wildchat_workload",
    "build_tot_workload",
    "build_mixed_tree_workload",
]
