"""Experiment scenarios and runners for every figure in the paper's evaluation."""

from .config import (
    ALL_SYSTEMS,
    BASELINE_SYSTEMS,
    SYSTEM_KINDS,
    ClusterConfig,
    ExperimentConfig,
    SystemConfig,
    WorkloadSpec,
)
from .diurnal_sweep import DiurnalSweepResult, build_skewed_workload, run_diurnal_sweep
from .hitrate import (
    SCENARIOS as HITRATE_SCENARIOS,
    HitRateComparison,
    HitRateScenario,
    build_scenario,
    evaluate_hit_rates,
    run_hitrate_benchmark,
)
from .imbalance import ImbalanceResult, run_imbalance_experiment
from .macro import MacroResult, default_macro_cluster, run_macro_benchmark
from .pushing import PushingResult, build_single_region_tot_workload, run_pushing_benchmark
from .runner import ExperimentResult, build_system, run_experiment
from .workloads import (
    MACRO_WORKLOAD_BUILDERS,
    build_arena_workload,
    build_mixed_tree_workload,
    build_tot_workload,
    build_wildchat_workload,
)

__all__ = [
    "SystemConfig",
    "ClusterConfig",
    "WorkloadSpec",
    "ExperimentConfig",
    "SYSTEM_KINDS",
    "BASELINE_SYSTEMS",
    "ALL_SYSTEMS",
    "ExperimentResult",
    "run_experiment",
    "build_system",
    "MacroResult",
    "run_macro_benchmark",
    "default_macro_cluster",
    "PushingResult",
    "run_pushing_benchmark",
    "build_single_region_tot_workload",
    "HitRateComparison",
    "HitRateScenario",
    "HITRATE_SCENARIOS",
    "build_scenario",
    "evaluate_hit_rates",
    "run_hitrate_benchmark",
    "ImbalanceResult",
    "run_imbalance_experiment",
    "DiurnalSweepResult",
    "run_diurnal_sweep",
    "build_skewed_workload",
    "MACRO_WORKLOAD_BUILDERS",
    "build_arena_workload",
    "build_wildchat_workload",
    "build_tot_workload",
    "build_mixed_tree_workload",
]
