"""Fig. 10: SkyWalker vs region-local deployment under regionally skewed load.

The paper emulates US working hours: 120 clients in the US versus 40 each in
Europe and Asia, and sweeps the total replica count (evenly split across the
three regions).  SkyWalker's cross-region offloading lets the US spill its
excess load into the underused regions, so it reaches a given throughput
with fewer replicas -- the paper's 9-replica SkyWalker matches the
12-replica region-local deployment, a 25 % cost reduction.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.cost import CostModel
from ..faults import FaultsLike
from ..metrics import AggregateMetrics, LatencySummary, RunMetrics, aggregate_cell
from ..workloads import ARENA_LIKE, ConversationConfig, ConversationWorkload, ProgramStream
from .config import ClusterConfig, ExperimentConfig, WorkloadSpec
from .registry import REGISTRY
from .runner import run_experiment
from .sweep import SweepExecutor, normalise_seeds

__all__ = ["DiurnalSweepResult", "build_skewed_workload", "run_diurnal_sweep"]

_REGIONS = ("us", "eu", "asia")


@dataclass
class DiurnalSweepResult:
    """Throughput per system per total replica count.

    :attr:`skywalker` / :attr:`region_local` hold the base-seed run per
    replica count (bit-identical to the historical single-seed output);
    multi-seed sweeps also fill the ``*_seed_runs`` maps, which feed
    :meth:`aggregate`.
    """

    skywalker: Dict[int, RunMetrics] = field(default_factory=dict)
    region_local: Dict[int, RunMetrics] = field(default_factory=dict)
    #: Per-seed runs: ``skywalker_seed_runs[total_replicas][seed]``.
    skywalker_seed_runs: Dict[int, Dict[int, RunMetrics]] = field(default_factory=dict)
    region_local_seed_runs: Dict[int, Dict[int, RunMetrics]] = field(default_factory=dict)

    def replica_counts(self) -> List[int]:
        return sorted(set(self.skywalker) | set(self.region_local))

    def aggregate(self, system: str, replicas: int) -> AggregateMetrics:
        """Mean/stdev/95% CI for one (system, replica count) across seeds.

        ``system`` must be ``"skywalker"`` or ``"region-local"`` (the two
        arms of the Fig. 10 comparison).
        """
        if system == "skywalker":
            seed_runs, base = self.skywalker_seed_runs, self.skywalker
        elif system == "region-local":
            seed_runs, base = self.region_local_seed_runs, self.region_local
        else:
            raise ValueError(
                f"unknown system {system!r}; expected 'skywalker' or 'region-local'"
            )
        return aggregate_cell(seed_runs.get(replicas), base[replicas])

    def throughput_series(self) -> Dict[str, Dict[int, float]]:
        return {
            "skywalker": {
                n: metrics.throughput_tokens_per_s for n, metrics in self.skywalker.items()
            },
            "region-local": {
                n: metrics.throughput_tokens_per_s for n, metrics in self.region_local.items()
            },
        }

    def speedup_at(self, replicas: int) -> float:
        """SkyWalker throughput over region-local at equal replica count."""
        base = self.region_local[replicas].throughput_tokens_per_s
        if base == 0:
            return float("inf")
        return self.skywalker[replicas].throughput_tokens_per_s / base

    def tail_ttft_improvement_at(self, replicas: int) -> float:
        """Region-local p90 TTFT over SkyWalker p90 TTFT (higher = better)."""
        sky = self.skywalker[replicas].ttft.p90
        if sky == 0:
            return float("inf")
        return self.region_local[replicas].ttft.p90 / sky

    def replicas_matching_region_local(self, region_local_replicas: int) -> Optional[int]:
        """Smallest SkyWalker fleet whose throughput matches (or exceeds) the
        region-local deployment with ``region_local_replicas`` replicas."""
        if region_local_replicas not in self.region_local:
            return None
        target = self.region_local[region_local_replicas].throughput_tokens_per_s
        for count in sorted(self.skywalker):
            if self.skywalker[count].throughput_tokens_per_s >= target:
                return count
        return None

    def replicas_meeting_slo(self, system: str, ttft_p90_slo_s: float,
                             region: Optional[str] = "us") -> Optional[int]:
        """Smallest fleet whose (optionally per-region) p90 TTFT meets an SLO.

        The overloaded region's tail latency is what forces region-local
        deployments to over-provision; SkyWalker meets the same SLO with
        fewer replicas by spilling that region's excess load elsewhere.
        """
        runs = self.skywalker if system == "skywalker" else self.region_local
        for count in sorted(runs):
            metrics = runs[count]
            key = f"{region}_ttft_p90"
            value = metrics.extra.get(key, metrics.ttft.p90) if region else metrics.ttft.p90
            if value <= ttft_p90_slo_s:
                return count
        return None

    def cost_reduction(self, region_local_replicas: int) -> Optional[float]:
        """Fractional cost saved at equal throughput (the paper reports 25 %)."""
        match = self.replicas_matching_region_local(region_local_replicas)
        if match is None:
            return None
        model = CostModel(requests_per_replica_hour=1.0)
        return model.cost_reduction_at_equal_throughput(match, region_local_replicas)

    def slo_cost_reduction(self, ttft_p90_slo_s: float, region: str = "us") -> Optional[float]:
        """Fractional replica (and thus reserved-cost) saving at equal SLO."""
        sky = self.replicas_meeting_slo("skywalker", ttft_p90_slo_s, region)
        local = self.replicas_meeting_slo("region-local", ttft_p90_slo_s, region)
        if sky is None or local is None or local == 0:
            return None
        return 1.0 - sky / local


def build_skewed_workload(scale: float = 1.0, *, seed: int = 5,
                          conversations_per_client: int = 3,
                          stream: bool = False) -> WorkloadSpec:
    """US-peak-hours workload: 120 US clients, 40 each in Europe and Asia.

    Conversations follow the ChatBot-Arena length profile (shorter prompts
    than WildChat) so that the US region's overload is dominated by demand
    rather than by individual giant prompts.

    ``stream=True`` swaps the materialized program lists for lazy
    :class:`~repro.workloads.streams.ProgramStream` specs (identical
    programs, O(1) memory) -- the path the million-request macrobench uses.
    """
    clients = {
        "us": max(1, int(round(120 * scale))),
        "eu": max(1, int(round(40 * scale))),
        "asia": max(1, int(round(40 * scale))),
    }
    programs_by_region = {}
    for region, count in clients.items():
        config = ConversationConfig(
            regions=(region,),
            users_per_region=count,
            conversations_per_user=conversations_per_client,
            turns_range=(2, 4),
            lengths=ARENA_LIKE,
            # crc32, not hash(): built-in str hashing is salted per process
            # (PYTHONHASHSEED), which would make "same seed, same workload"
            # false across invocations.
            seed=seed + zlib.crc32(region.encode("utf-8")) % 997,
        )
        if stream:
            programs_by_region[region] = ProgramStream(
                factory="conversation",
                region=region,
                num_programs=count * conversations_per_client,
                kwargs=(("config", config),),
            )
        else:
            programs_by_region[region] = ConversationWorkload(config).generate_programs()
    return WorkloadSpec(
        name="regionally-skewed",
        programs_by_region=programs_by_region,
        clients_per_region=clients,
        hash_key="user",
    )


@dataclass(frozen=True)
class _DiurnalCell:
    """One (system kind, total replica count) cell of the Fig. 10 sweep."""

    kind: str
    total_replicas: int
    workload: WorkloadSpec
    duration_s: float
    seed: int
    faults: FaultsLike = None


def _run_diurnal_cell(cell: _DiurnalCell) -> RunMetrics:
    """Run one Fig. 10 cell, annotating per-region tail latency.

    Module-level so :meth:`SweepExecutor.map` can ship it to a worker
    process; the per-region percentiles have to be computed here because
    only the worker sees the completed request objects.
    """
    per_region = cell.total_replicas // len(_REGIONS)
    cluster = ClusterConfig(
        replicas_per_region={region: per_region for region in _REGIONS}
    )
    config = ExperimentConfig(
        system=REGISTRY.spec(cell.kind, hash_key="user"),
        cluster=cluster,
        duration_s=cell.duration_s,
        seed=cell.seed,
        faults=cell.faults,
    )
    outcome = run_experiment(config, cell.workload.fresh_copy())
    metrics = outcome.metrics
    metrics.seed = cell.seed
    # Per-region tail latency: the overloaded (US) region is the one
    # a region-local deployment must over-provision for.
    for region in _REGIONS:
        ttfts = [r.ttft for r in outcome.completed if r.region == region and r.ttft is not None]
        if ttfts:
            summary = LatencySummary.from_values(ttfts)
            metrics.extra[f"{region}_ttft_p90"] = summary.p90
            metrics.extra[f"{region}_ttft_p50"] = summary.p50
    return metrics


def run_diurnal_sweep(
    *,
    replica_counts: Sequence[int] = (3, 6, 9, 12, 15, 18),
    scale: float = 0.2,
    duration_s: float = 120.0,
    seed: int = 5,
    seeds: Optional[Sequence[int]] = None,
    workers: int = 1,
    faults: FaultsLike = None,
) -> DiurnalSweepResult:
    """Sweep total replica counts for SkyWalker and the region-local baseline.

    ``seeds=[...]`` repeats the whole sweep with a freshly built skewed
    workload per seed (``seeds=[s]`` is bit-identical to ``seed=s``); the
    per-seed runs feed :meth:`DiurnalSweepResult.aggregate`.  ``workers`` >
    1 distributes the (kind, replica count, seed) cells over that many
    worker processes; results are identical to the serial sweep for the
    same seeds.  ``faults`` applies one deterministic fault schedule to
    every cell (e.g. to ask how many replicas each design needs when a
    balancer dies mid-peak).
    """
    for total in replica_counts:
        if total % len(_REGIONS) != 0:
            raise ValueError("replica counts must be divisible by the number of regions")
    seed_list = normalise_seeds(seed, seeds)
    cells = [
        _DiurnalCell(
            kind=kind,
            total_replicas=total,
            workload=workload,
            duration_s=duration_s,
            seed=cell_seed,
            faults=faults,
        )
        for cell_seed in seed_list
        for workload in (build_skewed_workload(scale=scale, seed=cell_seed),)
        for total in replica_counts
        for kind in ("skywalker", "region-local")
    ]
    result = DiurnalSweepResult()
    for cell, metrics in zip(cells, SweepExecutor(workers=workers).map(_run_diurnal_cell, cells)):
        if cell.kind == "skywalker":
            bucket, seed_bucket = result.skywalker, result.skywalker_seed_runs
        else:
            bucket, seed_bucket = result.region_local, result.region_local_seed_runs
        bucket.setdefault(cell.total_replicas, metrics)
        seed_bucket.setdefault(cell.total_replicas, {})[cell.seed] = metrics
    return result
