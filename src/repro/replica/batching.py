"""Continuous batching scheduler state for one replica.

This module contains the *policy* half of the replica (pure Python, no
simulation events) so that admission, decode accounting and completion can
be unit-tested deterministically.  The simulation-process half lives in
:mod:`repro.replica.server`.

Terminology follows the paper:

* **pending request** -- a request the replica has received but has not yet
  admitted into the continuous batch (blocked on KV memory or batch size).
  The *existence* of pending requests is the signal SkyWalker's SP-P
  selective pushing checks.
* **outstanding requests** -- pending plus running requests, the quantity
  SP-O style balancers bound with a fixed threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..mem import MemoryConfig
from ..workloads.request import Request, RequestStatus
from .memory import AdmissionGrant, KVMemoryManager
from .model_profile import ModelProfile

__all__ = ["RunningSequence", "StepPlan", "ContinuousBatcher"]


@dataclass
class RunningSequence:
    """State of one request inside the continuous batch."""

    request: Request
    cached_tokens: int
    new_prompt_tokens: int
    generated: int = 0
    #: The memory grant backing this sequence; lets the per-token decode
    #: loop update output accounting without a request-id dict lookup.
    grant: Optional[AdmissionGrant] = None

    @property
    def remaining(self) -> int:
        return self.request.output_len - self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_len


@dataclass
class StepPlan:
    """What the replica will execute next and how long it will take."""

    kind: str                       # "prefill" | "decode" | "idle"
    duration: float = 0.0
    admitted: List[RunningSequence] = field(default_factory=list)


class ContinuousBatcher:
    """Admission + decode bookkeeping for a single replica."""

    def __init__(
        self,
        profile: ModelProfile,
        *,
        enable_prefix_cache: bool = True,
        memory: Optional[MemoryConfig] = None,
    ) -> None:
        self.profile = profile
        self.memory = KVMemoryManager(
            profile, enable_prefix_cache=enable_prefix_cache, memory=memory
        )
        #: Compute-rate multiplier for gray failures (1.0 = nominal).  A
        #: degraded replica still answers probes and accepts work; only its
        #: compute time stretches by 1/scale.  Promotion stalls are transfer
        #: time, not GPU compute, so they are left unscaled.
        self.performance_scale: float = 1.0
        self.waiting: Deque[Request] = deque()
        self.running: List[RunningSequence] = []
        self._by_id: Dict[int, RunningSequence] = {}
        # Monotonic counters for metrics.
        self.total_admitted = 0
        self.total_finished = 0
        self.total_prompt_tokens = 0
        self.total_cached_tokens = 0
        self.total_generated_tokens = 0
        self.total_preemptions = 0
        self.total_preempted_tokens = 0
        #: Tokens served out of offload tiers (skip prefill, stall instead)
        #: and the summed promotion stalls -- zero on the legacy path.
        self.total_promoted_tokens = 0
        self.total_promotion_stall_s = 0.0
        #: Requests whose first admission has already been counted in the
        #: prompt/cached token statistics (re-admissions after preemption
        #: must not inflate the cache hit rate).
        self._counted_requests: set = set()

    # ------------------------------------------------------------------
    # observable load signals (what probes read)
    # ------------------------------------------------------------------
    @property
    def num_pending(self) -> int:
        """Requests received but not yet in the continuous batch."""
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_outstanding(self) -> int:
        return self.num_pending + self.num_running

    @property
    def memory_utilization(self) -> float:
        return self.memory.utilization

    @property
    def cache_hit_rate(self) -> float:
        """Token-level prefix cache hit rate over all admitted requests."""
        if self.total_prompt_tokens == 0:
            return 0.0
        return self.total_cached_tokens / self.total_prompt_tokens

    # ------------------------------------------------------------------
    def enqueue(self, request: Request, now: float) -> None:
        """Accept a request from the network; it becomes *pending*."""
        request.status = RequestStatus.PENDING_AT_REPLICA
        request.replica_arrival_time = now
        self.waiting.append(request)

    def admit(self, now: float) -> List[RunningSequence]:
        """Admit as many pending requests as memory and batch size allow.

        Admission is FCFS (head-of-line blocking included) which matches how
        SGLang/vLLM schedule their waiting queues and is what makes blind
        pushing hurt: a large stuck request at the head keeps later, smaller
        requests pending even if memory frees up elsewhere.
        """
        admitted: List[RunningSequence] = []
        while self.waiting and len(self.running) < self.profile.max_batch_size:
            request = self.waiting[0]
            grant = self.memory.admit(request.request_id, request.prompt_tokens, now)
            if grant is None:
                break
            self.waiting.popleft()
            seq = RunningSequence(
                request=request,
                cached_tokens=grant.cached_tokens,
                new_prompt_tokens=grant.new_prompt_tokens,
                grant=grant,
            )
            request.status = RequestStatus.RUNNING
            request.schedule_time = now
            request.cached_prefix_tokens = grant.cached_tokens
            request.prefilled_tokens = grant.new_prompt_tokens
            self.running.append(seq)
            self._by_id[request.request_id] = seq
            admitted.append(seq)
            if request.request_id not in self._counted_requests:
                self._counted_requests.add(request.request_id)
                self.total_admitted += 1
                self.total_prompt_tokens += request.prompt_len
                self.total_cached_tokens += grant.cached_tokens
                self.total_promoted_tokens += grant.promoted_tokens
            self.total_promotion_stall_s += grant.promotion_stall_s
        return admitted

    # ------------------------------------------------------------------
    def preempt_if_needed(self, now: float) -> List[RunningSequence]:
        """Preempt recently admitted sequences when KV memory runs out.

        Real engines (vLLM, SGLang) admit optimistically -- output lengths are
        unknown -- and when the KV pool fills mid-decode they preempt the
        newest sequences and recompute them later.  The preempted request goes
        back to the head of the waiting queue and loses its generated tokens,
        which is what makes sustained overload genuinely expensive.
        """
        preempted: List[RunningSequence] = []
        while len(self.running) > 1 and self.memory.free_tokens < len(self.running):
            victim = self.running[-1]
            self.running.pop()
            del self._by_id[victim.request.request_id]
            self.memory.release(victim.request.request_id, now)
            self.total_preemptions += 1
            self.total_preempted_tokens += victim.generated
            victim.request.generated_tokens = 0
            victim.request.status = RequestStatus.PENDING_AT_REPLICA
            self.waiting.appendleft(victim.request)
            preempted.append(victim)
        return preempted

    def plan_step(self, now: float) -> StepPlan:
        """Decide what to execute next (prefill new admissions, else decode)."""
        self.preempt_if_needed(now)
        admitted = self.admit(now)
        if admitted:
            # Tier-promoted tokens skip prefill compute like cached ones;
            # what they cost instead is the promotion stall (transfer-engine
            # queueing + copy time), serialised into this prefill step.
            new_tokens = sum(
                seq.new_prompt_tokens - seq.grant.promoted_tokens for seq in admitted
            )
            stall = sum(seq.grant.promotion_stall_s for seq in admitted)
            compute = self.profile.prefill_time(new_tokens)
            if self.performance_scale != 1.0:
                compute /= self.performance_scale
            return StepPlan(
                kind="prefill",
                duration=compute + stall,
                admitted=admitted,
            )
        if self.running:
            # All grants belong to running sequences (and vice versa), so the
            # memory manager's running total IS this batch's context size —
            # no per-sequence recount on the decode hot path.
            context = self.memory.context_tokens_total
            compute = self.profile.decode_step_time(len(self.running), context)
            if self.performance_scale != 1.0:
                compute /= self.performance_scale
            return StepPlan(kind="decode", duration=compute)
        return StepPlan(kind="idle")

    def complete_prefill(self, admitted: List[RunningSequence], now: float) -> List[Request]:
        """Record the first token of freshly prefilled sequences.

        Returns requests that finished immediately (``output_len == 1``).
        """
        finished: List[Request] = []
        for seq in admitted:
            seq.generated = 1
            self.memory.add_output_token(seq.request.request_id)
            seq.request.generated_tokens = 1
            if seq.request.first_token_time is None:
                seq.request.first_token_time = now
            self.total_generated_tokens += 1
            if seq.done:
                finished.append(self._finish(seq, now))
        return finished

    def complete_decode_step(self, now: float) -> List[Request]:
        """Every running sequence gains one token; return those that finished."""
        finished: List[Request] = []
        survivors: List[RunningSequence] = []
        running = self.running
        # Credit the whole step's output tokens up front; each sequence's
        # grant is bumped inside the loop, so by the time a finished
        # request's release() subtracts its grant the totals agree.
        self.memory.note_generated(len(running))
        self.total_generated_tokens += len(running)
        for seq in running:
            seq.generated += 1
            seq.grant.output_tokens += 1
            request = seq.request
            request.generated_tokens = seq.generated
            if request.first_token_time is None:
                request.first_token_time = now
            if seq.generated >= request.output_len:
                finished.append(self._finish(seq, now, unlink=False))
            else:
                survivors.append(seq)
        if finished:
            # One list rebuild instead of an O(batch) ``remove`` per
            # completion (order of the survivors is preserved).
            self.running = survivors
        return finished

    def _finish(self, seq: RunningSequence, now: float, *, unlink: bool = True) -> Request:
        request = seq.request
        request.status = RequestStatus.FINISHED
        request.finish_time = now
        if unlink:
            self.running.remove(seq)
        del self._by_id[request.request_id]
        # Multi-turn conversations resend the whole history, so caching the
        # prompt (already in the tree) is what matters; we do not re-insert
        # output tokens because the synthetic workloads append fresh token
        # ids per turn for the assistant reply.
        self.memory.release(request.request_id, now)
        self._counted_requests.discard(request.request_id)
        self.total_finished += 1
        return request

    def abort_all(self, now: float) -> List[Request]:
        """Fail every pending and running request (replica crash)."""
        aborted: List[Request] = []
        for seq in list(self.running):
            request = seq.request
            request.status = RequestStatus.FAILED
            self.running.remove(seq)
            del self._by_id[request.request_id]
            self.memory.release(request.request_id, now)
            aborted.append(request)
        while self.waiting:
            request = self.waiting.popleft()
            request.status = RequestStatus.FAILED
            aborted.append(request)
        return aborted
