"""Simulated LLM inference replica (SGLang/vLLM-style engine).

The replica models the pieces of a real serving engine that load-balancing
decisions depend on: continuous batching with a pending queue, paged KV
memory with a radix prefix cache, and a calibrated latency profile for
prefill and decode steps.
"""

from .batching import ContinuousBatcher, RunningSequence, StepPlan
from .kv_cache import MatchResult, RadixCache, RadixNode
from .memory import AdmissionGrant, KVMemoryManager
from .model_profile import (
    LLAMA_8B_A100,
    LLAMA_8B_L4,
    PERFORMANCE_LEVELS,
    TINY_TEST_PROFILE,
    ModelProfile,
    resolve_performance_scale,
)
from .server import ReplicaServer, ReplicaStats

__all__ = [
    "ContinuousBatcher",
    "RunningSequence",
    "StepPlan",
    "RadixCache",
    "RadixNode",
    "MatchResult",
    "KVMemoryManager",
    "AdmissionGrant",
    "ModelProfile",
    "LLAMA_8B_L4",
    "LLAMA_8B_A100",
    "TINY_TEST_PROFILE",
    "PERFORMANCE_LEVELS",
    "resolve_performance_scale",
    "ReplicaServer",
    "ReplicaStats",
]
