"""KV-memory accounting for a single replica.

The GPU's KV budget (in tokens, derived from the
:class:`~repro.replica.model_profile.ModelProfile`) is shared between

* the radix prefix cache (prompt tokens of past and running requests), and
* the *output* tokens of currently running requests, which live outside the
  tree until the request finishes (at which point the full sequence may be
  re-inserted as a reusable prefix).

The manager only hands out admission grants when the uncached part of the
prompt plus an output reserve fits after evicting unlocked cache entries --
this is the quantity that determines how many requests a replica can batch
concurrently, and therefore what "pending requests" means for selective
pushing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..mem import DEFAULT_MEMORY_CONFIG, MemoryConfig
from .kv_cache import RadixCache, RadixNode
from .model_profile import ModelProfile

__all__ = ["AdmissionGrant", "KVMemoryManager"]


@dataclass
class AdmissionGrant:
    """Everything the batcher needs to know about an admitted request."""

    request_id: int
    cached_tokens: int
    new_prompt_tokens: int
    locked_node: Optional[RadixNode]
    output_tokens: int = 0
    #: Tokens served from an offload tier (they skip prefill compute like
    #: cached tokens, but the promotion copy stalls the prefill instead).
    promoted_tokens: int = 0
    #: Transfer-engine stall the promotion adds to this request's prefill.
    promotion_stall_s: float = 0.0


class KVMemoryManager:
    """Token-granularity KV memory accounting for one replica.

    With a non-default :class:`~repro.mem.MemoryConfig` the flat budget
    becomes the page-rounded HBM tier of a :class:`~repro.mem.TieredKVStore`:
    pressure-eviction victims demote through the configured offload policy
    instead of vanishing, and admissions that extend their HBM prefix match
    on a lower tier pay that tier's promotion delay before prefill.
    """

    def __init__(
        self,
        profile: ModelProfile,
        enable_prefix_cache: bool = True,
        memory: Optional[MemoryConfig] = None,
    ) -> None:
        self.profile = profile
        self.memory = memory if memory is not None else DEFAULT_MEMORY_CONFIG
        self.capacity_tokens = self.memory.hbm_capacity_tokens(profile.kv_capacity_tokens)
        self.enable_prefix_cache = enable_prefix_cache
        self.cache = RadixCache(capacity_tokens=self.capacity_tokens)
        #: Offload tiers under HBM; ``None`` on the (default) legacy path.
        self.tiers = self.memory.build_store(profile.kv_bytes_per_token)
        if (
            self.tiers is not None
            and enable_prefix_cache
            and not self.tiers.offload_policy.inert
        ):
            self.cache.on_evict = self.tiers.demote
        #: Output tokens held by running requests, outside the radix tree.
        self._grants: Dict[int, AdmissionGrant] = {}
        #: Prompt tokens of running requests that could not be inserted into
        #: the cache (prefix caching disabled, or capacity truncated); they
        #: still occupy KV memory.
        self._uncached_prompt_tokens: Dict[int, int] = {}
        # Running totals so the per-step/per-probe load queries below are
        # O(1) instead of re-summing every grant (these sit on the decode
        # hot path: one query per scheduler step and per admission check).
        self._output_tokens_total = 0
        self._uncached_prompt_total = 0
        self._prompt_tokens_total = 0

    # ------------------------------------------------------------------
    @property
    def output_tokens_in_use(self) -> int:
        return self._output_tokens_total

    @property
    def used_tokens(self) -> int:
        """Tokens currently occupying KV memory."""
        return (
            self.cache.total_tokens
            + self._output_tokens_total
            + self._uncached_prompt_total
        )

    @property
    def context_tokens_total(self) -> int:
        """Prompt + generated tokens over all running requests (the decode
        step's attention context), maintained incrementally."""
        return self._prompt_tokens_total + self._output_tokens_total

    @property
    def free_tokens(self) -> int:
        return max(0, self.capacity_tokens - self.used_tokens)

    @property
    def utilization(self) -> float:
        """Fraction of the KV budget in use (the paper's Fig. 4b metric)."""
        if self.capacity_tokens == 0:
            return 0.0
        return self.used_tokens / self.capacity_tokens

    @property
    def num_running(self) -> int:
        return len(self._grants)

    # ------------------------------------------------------------------
    def can_admit(self, prompt_tokens: Sequence[int]) -> bool:
        """Would a request with this prompt fit right now (after eviction)?"""
        cached = 0
        if self.enable_prefix_cache:
            cached = self.cache.match_prefix(prompt_tokens, record=False).matched_tokens
        needed = (len(prompt_tokens) - cached) + self.profile.admission_output_reserve
        return needed <= self.free_tokens + self.cache.evictable_tokens()

    def admit(self, request_id: int, prompt_tokens: Sequence[int], now: float) -> Optional[AdmissionGrant]:
        """Try to admit a request; returns a grant or ``None`` if it does not fit."""
        if request_id in self._grants:
            raise ValueError(f"request {request_id} is already admitted")
        reserve = self.profile.admission_output_reserve

        if not self.enable_prefix_cache:
            needed = len(prompt_tokens) + reserve
            if needed > self.free_tokens + self.cache.evictable_tokens():
                return None
            self.cache.evict(max(0, needed - self.free_tokens), now=now)
            if needed > self.free_tokens:
                return None
            grant = AdmissionGrant(
                request_id=request_id,
                cached_tokens=0,
                new_prompt_tokens=len(prompt_tokens),
                locked_node=None,
            )
            self._grants[request_id] = grant
            self._uncached_prompt_tokens[request_id] = len(prompt_tokens)
            self._uncached_prompt_total += len(prompt_tokens)
            self._prompt_tokens_total += len(prompt_tokens)
            return grant

        match = self.cache.match_prefix(prompt_tokens, now=now)
        cached = match.matched_tokens
        new_prompt = len(prompt_tokens) - cached
        needed = new_prompt + reserve
        if needed > self.free_tokens + self.cache.evictable_tokens():
            return None
        # Pin the matched prefix before evicting so it cannot be a victim.
        if match.last_node is not None:
            self.cache.lock(match.last_node)
        shortfall = needed - self.free_tokens
        if shortfall > 0:
            self.cache.evict(shortfall, now=now)
        if needed > self.free_tokens:
            if match.last_node is not None:
                self.cache.unlock(match.last_node)
            return None

        # Insert the full prompt into the tree and lock the deepest node so
        # the whole prompt stays resident while the request runs.
        self.cache.insert(prompt_tokens, now=now)
        full_match = self.cache.match_prefix(prompt_tokens, now=now, record=False)
        uninserted = len(prompt_tokens) - full_match.matched_tokens
        if full_match.last_node is not None:
            self.cache.lock(full_match.last_node)
        if match.last_node is not None:
            self.cache.unlock(match.last_node)

        # A lower tier may extend the HBM prefix match: those tokens skip
        # prefill compute but the promotion copy stalls this prefill.  The
        # lookup runs after the insert so eviction-triggered demotions of
        # this very admit cannot invalidate the chosen segment.
        promoted = 0
        stall = 0.0
        if self.tiers is not None:
            found = self.tiers.lookup(tuple(prompt_tokens), cached)
            if found is not None:
                promoted, stall = self.tiers.promote(found, cached, now)
                promoted = min(promoted, new_prompt)

        grant = AdmissionGrant(
            request_id=request_id,
            cached_tokens=cached,
            new_prompt_tokens=new_prompt,
            locked_node=full_match.last_node,
            promoted_tokens=promoted,
            promotion_stall_s=stall,
        )
        self._grants[request_id] = grant
        self._prompt_tokens_total += cached + new_prompt
        if uninserted > 0:
            # Capacity-truncated tail of the prompt still occupies KV memory
            # for the lifetime of the request, it is just not reusable.
            self._uncached_prompt_tokens[request_id] = uninserted
            self._uncached_prompt_total += uninserted
        return grant

    # ------------------------------------------------------------------
    def add_output_token(self, request_id: int, count: int = 1) -> None:
        """Account for ``count`` newly generated tokens of a running request."""
        grant = self._grants.get(request_id)
        if grant is None:
            raise KeyError(f"request {request_id} is not running")
        grant.output_tokens += count
        self._output_tokens_total += count

    def note_generated(self, count: int) -> None:
        """Credit ``count`` output tokens whose grants the caller updates
        itself (the batcher's decode loop holds direct grant references)."""
        self._output_tokens_total += count

    def context_tokens(self, request_id: int) -> int:
        """Prompt + generated tokens currently attended to by a request."""
        grant = self._grants[request_id]
        prompt = grant.cached_tokens + grant.new_prompt_tokens
        return prompt + grant.output_tokens

    def release(self, request_id: int, now: float, *, cache_output: bool = False,
                full_sequence: Optional[Sequence[int]] = None) -> None:
        """Release a finished (or failed) request's memory.

        The prompt prefix stays in the radix cache (unlocked, evictable);
        output tokens are dropped unless ``cache_output`` is set and the full
        sequence is provided, in which case they are inserted as a reusable
        prefix (multi-turn conversations benefit from this, mirroring SGLang).
        """
        grant = self._grants.pop(request_id, None)
        if grant is None:
            raise KeyError(f"request {request_id} is not running")
        self._output_tokens_total -= grant.output_tokens
        self._prompt_tokens_total -= grant.cached_tokens + grant.new_prompt_tokens
        self._uncached_prompt_total -= self._uncached_prompt_tokens.pop(request_id, 0)
        if grant.locked_node is not None:
            self.cache.unlock(grant.locked_node)
        if cache_output and full_sequence is not None and self.enable_prefix_cache:
            free_budget = self.capacity_tokens - self.cache.total_tokens
            extra = len(full_sequence) - self.cache.match_prefix(
                full_sequence, record=False
            ).matched_tokens
            if extra <= free_budget:
                self.cache.insert(full_sequence, now=now)

    def check_invariants(self) -> None:
        """Structural sanity checks used by the property-based tests."""
        self.cache.check_invariants()
        if self.tiers is not None:
            self.tiers.check_invariants()
        if self.used_tokens > self.capacity_tokens:
            raise AssertionError("KV memory over capacity")
        if self.output_tokens_in_use < 0:
            raise AssertionError("negative output token accounting")
        if self._output_tokens_total != sum(g.output_tokens for g in self._grants.values()):
            raise AssertionError("output token running total drifted from grants")
        if self._uncached_prompt_total != sum(self._uncached_prompt_tokens.values()):
            raise AssertionError("uncached prompt running total drifted")
        if self._prompt_tokens_total != sum(
            g.cached_tokens + g.new_prompt_tokens for g in self._grants.values()
        ):
            raise AssertionError("prompt token running total drifted from grants")
