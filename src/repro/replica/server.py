"""The replica server: a simulated SGLang/vLLM-style inference engine.

A :class:`ReplicaServer` is a simulation process that consumes requests from
its inbox, runs them through a :class:`ContinuousBatcher`, and notifies
listeners when first tokens and completions happen.  Load balancers never
call into the batcher directly -- they observe the replica the same way the
real system does, through the probe properties (``num_pending``,
``num_outstanding``, ...) exposed here and accessed via the network layer
with realistic probe latency.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..mem import MemoryConfig
from ..sim import Environment, Interrupt, Store
from ..workloads.request import Request, RequestStatus
from .batching import ContinuousBatcher
from .model_profile import LLAMA_8B_L4, ModelProfile, resolve_performance_scale

__all__ = ["ReplicaServer", "ReplicaStats"]

RequestCallback = Callable[[Request], None]


class ReplicaStats:
    """Aggregated, monotonic counters for one replica."""

    def __init__(self) -> None:
        self.busy_time = 0.0
        self.prefill_time = 0.0
        self.decode_time = 0.0
        self.steps = 0
        self.utilization_samples: List[Tuple[float, float]] = []

    def record_step(self, kind: str, duration: float) -> None:
        self.busy_time += duration
        self.steps += 1
        if kind == "prefill":
            self.prefill_time += duration
        else:
            self.decode_time += duration


class ReplicaServer:
    """One model replica in one region.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Unique replica name, e.g. ``"us/replica-0"``.
    region:
        Region the replica is deployed in.
    profile:
        Latency/memory model; defaults to Llama-3.1-8B on an L4, the paper's
        configuration.
    enable_prefix_cache:
        Disable to model a replica without RadixAttention-style caching.
    memory:
        Optional :class:`~repro.mem.MemoryConfig` turning the flat KV budget
        into a paged, tiered hierarchy; ``None`` keeps the legacy model.
    record_utilization:
        When set, the replica appends ``(time, kv_utilization)`` samples after
        every step; used to reproduce the paper's Fig. 4b.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        region: str,
        profile: ModelProfile = LLAMA_8B_L4,
        *,
        enable_prefix_cache: bool = True,
        memory: Optional[MemoryConfig] = None,
        record_utilization: bool = False,
    ) -> None:
        self.env = env
        self.name = name
        self.region = region
        self.profile = profile
        self.memory_config = memory
        self.batcher = ContinuousBatcher(
            profile, enable_prefix_cache=enable_prefix_cache, memory=memory
        )
        self.inbox: Store = Store(env)
        self.stats = ReplicaStats()
        self.record_utilization = record_utilization
        self.healthy = True
        # Gray-failure state: a degraded replica stays healthy and keeps
        # serving, just slower.  ``_degrade_until is None`` means "until an
        # explicit restore"; the epoch counter guards against a stale timed
        # restore clobbering a newer degrade.
        self._degrade_level: Optional[str] = None
        self._degrade_scale: float = 1.0
        self._degrade_until: Optional[float] = None
        self._degrade_epoch: int = 0
        self._on_first_token: List[RequestCallback] = []
        self._on_complete: List[RequestCallback] = []
        self._on_health: List[Callable[["ReplicaServer"], None]] = []
        self._process = env.process(self._run())

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def add_completion_listener(self, callback: RequestCallback) -> None:
        """Register a callback invoked (with the request) on completion."""
        self._on_complete.append(callback)

    def add_first_token_listener(self, callback: RequestCallback) -> None:
        """Register a callback invoked when a request emits its first token."""
        self._on_first_token.append(callback)

    def add_health_listener(self, callback: Callable[["ReplicaServer"], None]) -> None:
        """Register a callback invoked (with the replica) on fail/recover."""
        self._on_health.append(callback)

    def remove_completion_listener(self, callback: RequestCallback) -> None:
        """Detach a completion listener (no-op if not registered)."""
        if callback in self._on_complete:
            self._on_complete.remove(callback)

    def remove_health_listener(self, callback: Callable[["ReplicaServer"], None]) -> None:
        """Detach a health listener (no-op if not registered)."""
        if callback in self._on_health:
            self._on_health.remove(callback)

    def _emit_health_change(self) -> None:
        for callback in self._on_health:
            callback(self)

    def submit(self, request: Request):
        """Hand a request to the replica (returns the store-put event)."""
        if not self.healthy:
            raise RuntimeError(f"replica {self.name} is down")
        return self.inbox.put(request)

    def fail(self) -> List[Request]:
        """Crash the replica: abort all work and stop the serving loop."""
        if not self.healthy:
            return []
        self.healthy = False
        aborted = self.batcher.abort_all(self.env.now)
        while self.inbox.items:
            request = self.inbox.items.popleft()
            request.status = RequestStatus.FAILED
            aborted.append(request)
        if self._process.is_alive:
            self._process.interrupt("replica-failure")
        self._emit_health_change()
        return aborted

    def recover(self, *, preserve_disk: bool = False) -> None:
        """Bring a failed replica back with a cold cache.

        HBM (and host RAM) contents never survive a crash, but with
        ``preserve_disk`` the disk tier's segments carry over into the fresh
        batcher -- modelling durable KV offload that a restarted engine can
        re-attach (only meaningful with a tiered :class:`MemoryConfig`).
        """
        if self.healthy:
            return
        self.healthy = True
        old_tiers = self.batcher.memory.tiers
        self.batcher = ContinuousBatcher(
            self.profile,
            enable_prefix_cache=self.batcher.memory.enable_prefix_cache,
            memory=self.memory_config,
        )
        if preserve_disk and old_tiers is not None:
            new_tiers = self.batcher.memory.tiers
            if new_tiers is not None:
                new_tiers.restore_tier("disk", old_tiers.export_tier("disk"), self.env.now)
        # Degrade/crash precedence: a restart clears transient slowness (the
        # replacement engine comes up at full rate) UNLESS the degrade window
        # is still open -- an environmental cause (thermal, power cap) outlasts
        # the process, so it re-applies to the fresh batcher.
        if self._degrade_scale != 1.0 and (
            self._degrade_until is None or self.env.now < self._degrade_until
        ):
            self.batcher.performance_scale = self._degrade_scale
        else:
            self._clear_degrade()
        # A fresh inbox: the crashed serving loop may have left an orphaned
        # get() registered on the old store, which would silently swallow the
        # first request delivered after recovery.
        self.inbox = Store(self.env)
        self._process = self.env.process(self._run())
        self._emit_health_change()

    # ------------------------------------------------------------------
    # gray failures (slow-but-alive)
    # ------------------------------------------------------------------
    @property
    def performance_level(self) -> Optional[str]:
        """Name of the active degrade level, ``None`` when nominal."""
        return self._degrade_level

    @property
    def performance_scale(self) -> float:
        """Current compute-rate multiplier (1.0 = nominal)."""
        return self._degrade_scale

    def set_performance_level(self, level, *, until: Optional[float] = None) -> int:
        """Degrade the replica to ``level`` (a name or a float in (0, 1]).

        The replica stays healthy and keeps accepting work; only compute
        stretches.  ``until`` records when a timed degrade is scheduled to
        lift (used by crash-recovery precedence).  Returns an epoch token to
        pass to :meth:`restore_performance` so a stale timed restore cannot
        clobber a newer degrade.  Works on unhealthy replicas too: the level
        is remembered and applied when (if) the crash recovery keeps it.
        """
        scale = resolve_performance_scale(level)
        self._degrade_level = level if isinstance(level, str) else None
        self._degrade_scale = scale
        self._degrade_until = until
        self._degrade_epoch += 1
        self.batcher.performance_scale = scale
        return self._degrade_epoch

    def restore_performance(self, token: Optional[int] = None) -> None:
        """Return to nominal rates.

        With ``token``, only restores if no newer degrade has been applied
        since the token was issued; ``None`` forces the restore.
        """
        if token is not None and token != self._degrade_epoch:
            return
        self._clear_degrade()

    def _clear_degrade(self) -> None:
        self._degrade_level = None
        self._degrade_scale = 1.0
        self._degrade_until = None
        self.batcher.performance_scale = 1.0

    # ------------------------------------------------------------------
    # probe interface (observable load signals)
    # ------------------------------------------------------------------
    @property
    def num_pending(self) -> int:
        """Requests not yet scheduled into the continuous batch (§3.3)."""
        return self.batcher.num_pending + len(self.inbox.items)

    @property
    def num_running(self) -> int:
        return self.batcher.num_running

    @property
    def num_outstanding(self) -> int:
        return self.batcher.num_outstanding + len(self.inbox.items)

    @property
    def memory_utilization(self) -> float:
        return self.batcher.memory_utilization

    @property
    def cache_hit_rate(self) -> float:
        return self.batcher.cache_hit_rate

    @property
    def has_capacity(self) -> bool:
        """SP-P availability signal: no pending request means "not full"."""
        return self.healthy and self.num_pending == 0

    # ------------------------------------------------------------------
    # serving loop
    # ------------------------------------------------------------------
    def _drain_inbox(self) -> None:
        while self.inbox.items:
            request = self.inbox.items.popleft()
            self.batcher.enqueue(request, self.env.now)

    def _emit_first_tokens(self, requests: List[Request]) -> None:
        for request in requests:
            for callback in self._on_first_token:
                callback(request)

    def _emit_completions(self, requests: List[Request]) -> None:
        for request in requests:
            request.replica_name = self.name
            request.serving_region = self.region
            for callback in self._on_complete:
                callback(request)

    def _run(self):
        env = self.env
        try:
            while True:
                self._drain_inbox()
                plan = self.batcher.plan_step(env.now)
                if plan.kind == "idle":
                    request = yield self.inbox.get()
                    self.batcher.enqueue(request, env.now)
                    continue
                yield env.timeout(plan.duration)
                self.stats.record_step(plan.kind, plan.duration)
                if plan.kind == "prefill":
                    newly_running = [seq.request for seq in plan.admitted]
                    finished = self.batcher.complete_prefill(plan.admitted, env.now)
                    self._emit_first_tokens(newly_running)
                else:
                    finished = self.batcher.complete_decode_step(env.now)
                    just_got_first = [
                        r for r in finished if r.generated_tokens == 1
                    ]
                    self._emit_first_tokens(just_got_first)
                if finished:
                    self._emit_completions(finished)
                if self.record_utilization:
                    self.stats.utilization_samples.append(
                        (env.now, self.memory_utilization)
                    )
        except Interrupt:
            # Replica failure: simply stop serving.  ``fail`` already aborted
            # outstanding work.
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ReplicaServer {self.name} region={self.region} "
            f"pending={self.num_pending} running={self.num_running}>"
        )
