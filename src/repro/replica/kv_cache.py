"""Radix-tree KV prefix cache, modelled after SGLang's RadixAttention cache.

The cache stores token sequences in a compressed radix tree.  Each edge is a
run of tokens; the number of tokens stored in the tree is the cache's memory
footprint.  Running requests *lock* the nodes on their prompt path so the
evictor can never free memory that an in-flight sequence still needs.

The simulator uses the cache for two purposes:

* inside a replica, to decide how many prompt tokens of a new request are
  already resident (prefix hit -> shorter prefill), and
* inside SkyWalker's load balancer, where the same data structure (without
  memory accounting) tracks which *targets* have seen which prefixes
  (:mod:`repro.core.prefix_tree` builds on the node layout defined here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["RadixNode", "RadixCache", "MatchResult"]


class RadixNode:
    """One node of the radix tree.

    ``key`` is the token run on the edge from ``parent`` to this node.  The
    root has an empty key and no parent.
    """

    __slots__ = ("key", "parent", "children", "last_access", "lock_count")

    def __init__(
        self,
        key: Tuple[int, ...] = (),
        parent: Optional["RadixNode"] = None,
    ) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[int, "RadixNode"] = {}
        self.last_access = 0.0
        self.lock_count = 0

    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        """Number of tokens stored on the edge leading to this node."""
        return len(self.key)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def path_tokens(self) -> Tuple[int, ...]:
        """Full token sequence from the root to this node."""
        parts: List[Tuple[int, ...]] = []
        node: Optional[RadixNode] = self
        while node is not None and not node.is_root:
            parts.append(node.key)
            node = node.parent
        return tuple(tok for part in reversed(parts) for tok in part)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<RadixNode len={len(self.key)} children={len(self.children)} locks={self.lock_count}>"


@dataclass
class MatchResult:
    """Result of a prefix lookup."""

    #: Number of prompt tokens found in the cache.
    matched_tokens: int
    #: Nodes whose full edge is covered by the match, root-excluded, in
    #: root-to-leaf order.  Locking these pins the matched prefix in memory.
    nodes: List[RadixNode] = field(default_factory=list)

    @property
    def last_node(self) -> Optional[RadixNode]:
        return self.nodes[-1] if self.nodes else None


def _common_prefix_len(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common prefix of two token runs."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class RadixCache:
    """A size-bounded radix tree over token sequences with LRU eviction.

    Parameters
    ----------
    capacity_tokens:
        Maximum number of tokens the tree may hold.  ``insert`` never grows
        the tree beyond this; callers evict first (see
        :meth:`evict`) or accept partial insertion.
    """

    def __init__(self, capacity_tokens: float = float("inf")) -> None:
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        self.capacity_tokens = capacity_tokens
        self.root = RadixNode()
        self._total_tokens = 0
        # Monotonic counters for cache-hit statistics.
        self.lookup_tokens = 0
        self.hit_tokens = 0

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Number of tokens currently stored in the tree."""
        return self._total_tokens

    @property
    def hit_rate(self) -> float:
        """Lifetime token-level cache hit rate of ``match_prefix`` calls."""
        if self.lookup_tokens == 0:
            return 0.0
        return self.hit_tokens / self.lookup_tokens

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def match_prefix(self, tokens: Sequence[int], now: float = 0.0, *, record: bool = True) -> MatchResult:
        """Return the longest cached prefix of ``tokens``.

        A partial match of an edge does not count: only whole edges are
        returned in ``nodes`` (matching SGLang, where a partially matched
        block is split on insert, not on lookup).  ``matched_tokens`` however
        reports the exact token-level overlap, which is what determines how
        much prefill compute is saved.
        """
        node = self.root
        matched = 0
        nodes: List[RadixNode] = []
        idx = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                break
            overlap = _common_prefix_len(child.key, tokens[idx:])
            if overlap == 0:
                break
            matched += overlap
            idx += overlap
            child.last_access = now
            if overlap == len(child.key):
                nodes.append(child)
                node = child
            else:
                # Partial edge match: stop here (the caller may insert to
                # split the edge).
                break
        if record:
            self.lookup_tokens += n
            self.hit_tokens += matched
        return MatchResult(matched_tokens=matched, nodes=nodes)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, tokens: Sequence[int], now: float = 0.0) -> int:
        """Insert ``tokens`` into the tree, returning the tokens newly added.

        The insert is capacity-aware: if adding the suffix would exceed
        ``capacity_tokens`` the caller is expected to have evicted first;
        whatever does not fit is silently truncated (the cache holds a
        prefix of the sequence, which is always semantically valid).
        """
        tokens = tuple(tokens)
        node = self.root
        idx = 0
        added = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                remaining_capacity = self.capacity_tokens - self._total_tokens
                if remaining_capacity <= 0:
                    break
                take = int(min(n - idx, remaining_capacity))
                new_node = RadixNode(key=tokens[idx : idx + take], parent=node)
                new_node.last_access = now
                node.children[tokens[idx]] = new_node
                self._total_tokens += take
                added += take
                break
            overlap = _common_prefix_len(child.key, tokens[idx:])
            child.last_access = now
            if overlap == len(child.key):
                node = child
                idx += overlap
                continue
            # Split the edge at the divergence point.
            upper = self._split(child, overlap)
            node = upper
            idx += overlap
        return added

    def _split(self, node: RadixNode, offset: int) -> RadixNode:
        """Split ``node``'s edge so that its first ``offset`` tokens become a
        new parent node.  ``node`` keeps its identity as the *lower* half so
        that lock references held by running requests (which always cover the
        full original edge) keep protecting the whole path when they unlock.
        Returns the newly created upper node.
        """
        if not 0 < offset < len(node.key):
            raise ValueError("split offset must be strictly inside the edge")
        parent = node.parent
        assert parent is not None
        upper = RadixNode(key=node.key[:offset], parent=parent)
        upper.last_access = node.last_access
        # The lower half's lock holders all cover the upper half too.
        upper.lock_count = node.lock_count
        parent.children[upper.key[0]] = upper
        node.key = node.key[offset:]
        node.parent = upper
        upper.children = {node.key[0]: node}
        return upper

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def lock(self, node: Optional[RadixNode]) -> None:
        """Pin ``node`` and all of its ancestors (a running request's prefix)."""
        while node is not None and not node.is_root:
            node.lock_count += 1
            node = node.parent

    def unlock(self, node: Optional[RadixNode]) -> None:
        """Release a previous :meth:`lock` on ``node``'s path."""
        while node is not None and not node.is_root:
            if node.lock_count <= 0:
                raise RuntimeError("unlock without matching lock")
            node.lock_count -= 1
            node = node.parent

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evictable_tokens(self) -> int:
        """Tokens stored on unlocked leaf-reachable edges (free-able memory)."""
        total = 0
        for node in self._iter_nodes():
            if node.lock_count == 0 and not node.is_root:
                total += node.num_tokens
        return total

    def evict(self, num_tokens: int, now: float = 0.0) -> int:
        """Evict at least ``num_tokens`` tokens if possible, LRU-leaf first.

        Returns the number of tokens actually evicted.  Locked nodes are
        never evicted.
        """
        evicted = 0
        while evicted < num_tokens:
            victim = self._lru_unlocked_leaf()
            if victim is None:
                break
            evicted += self._remove_leaf(victim)
        return evicted

    def _lru_unlocked_leaf(self) -> Optional[RadixNode]:
        best: Optional[RadixNode] = None
        for node in self._iter_nodes():
            if node.is_root or node.children or node.lock_count > 0:
                continue
            if best is None or node.last_access < best.last_access:
                best = node
        return best

    def _remove_leaf(self, node: RadixNode) -> int:
        assert node.parent is not None and not node.children
        parent = node.parent
        del parent.children[node.key[0]]
        self._total_tokens -= node.num_tokens
        return node.num_tokens

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every unlocked entry (used by failure-recovery tests)."""
        self.evict(self._total_tokens)

    def _iter_nodes(self) -> Iterable[RadixNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def check_invariants(self) -> None:
        """Verify structural invariants (used heavily by property tests)."""
        seen_tokens = 0
        for node in self._iter_nodes():
            if node.is_root:
                if node.key != ():
                    raise AssertionError("root must have an empty key")
                continue
            if not node.key:
                raise AssertionError("non-root node with empty key")
            seen_tokens += node.num_tokens
            first = node.key[0]
            if node.parent.children.get(first) is not node:
                raise AssertionError("child index out of sync with key")
            # Sibling edges must not share a first token (radix property).
            siblings = [c for c in node.parent.children.values() if c is not node]
            for sibling in siblings:
                if sibling.key[0] == node.key[0]:
                    raise AssertionError("two sibling edges share a first token")
        if seen_tokens != self._total_tokens:
            raise AssertionError(
                f"token accounting mismatch: counted {seen_tokens}, recorded {self._total_tokens}"
            )
        if self._total_tokens > self.capacity_tokens:
            raise AssertionError("cache exceeded its capacity")
