"""Radix-tree KV prefix cache, modelled after SGLang's RadixAttention cache.

The cache stores token sequences in a compressed radix tree.  Each edge is a
run of tokens; the number of tokens stored in the tree is the cache's memory
footprint.  Running requests *lock* the nodes on their prompt path so the
evictor can never free memory that an in-flight sequence still needs.

The simulator uses the cache for two purposes:

* inside a replica, to decide how many prompt tokens of a new request are
  already resident (prefix hit -> shorter prefill), and
* inside SkyWalker's load balancer, where the same data structure (without
  memory accounting) tracks which *targets* have seen which prefixes
  (:mod:`repro.core.prefix_tree` builds on the node layout defined here).

Hot-path design:

* **LRU eviction is O(log n)** via a lazy min-heap over unlocked leaves
  keyed by ``(last_access, entry_id)``.  Every touch of a leaf pushes a
  fresh entry; stale entries (node re-touched, locked, grown children, or
  detached) are skipped at pop time.  The ``entry_id`` makes the order
  among equal ``last_access`` values deterministic (earliest-recorded
  first) without ever comparing nodes.
* **``evictable_tokens`` is O(1)**: a running counter of tokens on
  unlocked non-root edges, maintained by insert/split/lock/unlock/evict.
  The replica's admission path calls it per request, so the old full-tree
  recount was a per-request linear scan.
* **Lookups descend by offset** into the caller's token sequence instead
  of slicing suffix tuples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["RadixNode", "RadixCache", "MatchResult"]


class RadixNode:
    """One node of the radix tree.

    ``key`` is the token run on the edge from ``parent`` to this node.  The
    root has an empty key and no parent.
    """

    __slots__ = ("key", "parent", "children", "last_access", "lock_count", "hit_count")

    def __init__(
        self,
        key: Tuple[int, ...] = (),
        parent: Optional["RadixNode"] = None,
    ) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[int, "RadixNode"] = {}
        self.last_access = 0.0
        self.lock_count = 0
        #: Lifetime number of recorded prefix matches covering this edge;
        #: offload policies use it as the segment's "heat" when the node is
        #: eventually evicted (see ``pin-hot-prefixes``).
        self.hit_count = 0

    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        """Number of tokens stored on the edge leading to this node."""
        return len(self.key)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def path_tokens(self) -> Tuple[int, ...]:
        """Full token sequence from the root to this node."""
        parts: List[Tuple[int, ...]] = []
        node: Optional[RadixNode] = self
        while node is not None and not node.is_root:
            parts.append(node.key)
            node = node.parent
        return tuple(tok for part in reversed(parts) for tok in part)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<RadixNode len={len(self.key)} children={len(self.children)} locks={self.lock_count}>"


@dataclass
class MatchResult:
    """Result of a prefix lookup."""

    #: Number of prompt tokens found in the cache.
    matched_tokens: int
    #: Nodes whose full edge is covered by the match, root-excluded, in
    #: root-to-leaf order.  Locking these pins the matched prefix in memory.
    nodes: List[RadixNode] = field(default_factory=list)

    @property
    def last_node(self) -> Optional[RadixNode]:
        return self.nodes[-1] if self.nodes else None


class RadixCache:
    """A size-bounded radix tree over token sequences with LRU eviction.

    Parameters
    ----------
    capacity_tokens:
        Maximum number of tokens the tree may hold.  ``insert`` never grows
        the tree beyond this; callers evict first (see
        :meth:`evict`) or accept partial insertion.
    """

    def __init__(self, capacity_tokens: float = float("inf")) -> None:
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        self.capacity_tokens = capacity_tokens
        self.root = RadixNode()
        self._total_tokens = 0
        self._evictable_tokens = 0
        self._node_count = 0
        # Monotonic counters for cache-hit statistics.
        self.lookup_tokens = 0
        self.hit_tokens = 0
        #: Lazy LRU heap over unlocked leaves: ``(last_access, entry_id,
        #: node)``; see the module docstring.
        self._leaf_heap: List[Tuple[float, int, RadixNode]] = []
        self._entry_ids = itertools.count()
        #: Optional demotion hook ``(tokens, hits, last_access, now)`` called
        #: for every pressure-eviction victim *before* it is removed -- the
        #: tiered KV store registers itself here so victims spill to lower
        #: tiers instead of vanishing.  ``None`` (default) keeps the legacy
        #: drop-on-evict behaviour, with zero extra work on the hot path.
        self.on_evict = None

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Number of tokens currently stored in the tree."""
        return self._total_tokens

    @property
    def hit_rate(self) -> float:
        """Lifetime token-level cache hit rate of ``match_prefix`` calls."""
        if self.lookup_tokens == 0:
            return 0.0
        return self.hit_tokens / self.lookup_tokens

    # ------------------------------------------------------------------
    # LRU bookkeeping
    # ------------------------------------------------------------------
    def _note_leaf(self, node: RadixNode) -> None:
        """Record an eviction-heap entry if ``node`` is an unlocked leaf.

        Called whenever a node's ``last_access`` changes or it (re)gains
        leaf/unlocked status; stale entries die lazily at pop time.
        """
        if not node.children and node.lock_count == 0 and node.parent is not None:
            heap = self._leaf_heap
            heappush(heap, (node.last_access, next(self._entry_ids), node))
            # Caches that never hit capacity never pop, so stale entries
            # (and the detached nodes they reference) would otherwise pile
            # up for the whole run; compact once the heap clearly outgrows
            # the live tree.
            if len(heap) > 64 and len(heap) > 4 * self._node_count:
                self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop stale entries, keeping the first-popping entry per leaf."""
        live: Dict[int, Tuple[float, int, RadixNode]] = {}
        for entry in self._leaf_heap:
            if self._entry_live(entry[0], entry[2]):
                key = id(entry[2])
                previous = live.get(key)
                if previous is None or entry < previous:
                    live[key] = entry
        self._leaf_heap = list(live.values())
        heapify(self._leaf_heap)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def match_prefix(self, tokens: Sequence[int], now: float = 0.0, *, record: bool = True) -> MatchResult:
        """Return the longest cached prefix of ``tokens``.

        A partial match of an edge does not count: only whole edges are
        returned in ``nodes`` (matching SGLang, where a partially matched
        block is split on insert, not on lookup).  ``matched_tokens`` however
        reports the exact token-level overlap, which is what determines how
        much prefill compute is saved.

        Note that the lookup touches ``last_access`` on the matched path
        even with ``record=False`` and the default ``now=0.0`` — historical
        touch-on-read semantics that sized-cache callers rely on for
        bit-reproducibility; pass the real clock if recency matters.
        """
        node = self.root
        matched = 0
        nodes: List[RadixNode] = []
        idx = 0
        n = len(tokens)
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                break
            key = child.key
            klen = len(key)
            # Full-edge comparisons dominate multi-turn lookups (the resent
            # history matches whole edges); one C-level tuple comparison
            # beats a Python loop over thousands of tokens.
            if klen <= n - idx and tokens[idx : idx + klen] == key:
                overlap = klen
            else:
                limit = min(klen, n - idx)
                overlap = 0
                while overlap < limit and key[overlap] == tokens[idx + overlap]:
                    overlap += 1
            if overlap == 0:
                break
            matched += overlap
            idx += overlap
            child.last_access = now
            if record:
                child.hit_count += 1
            self._note_leaf(child)
            if overlap == len(key):
                nodes.append(child)
                node = child
            else:
                # Partial edge match: stop here (the caller may insert to
                # split the edge).
                break
        if record:
            self.lookup_tokens += n
            self.hit_tokens += matched
        return MatchResult(matched_tokens=matched, nodes=nodes)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, tokens: Sequence[int], now: float = 0.0) -> int:
        """Insert ``tokens`` into the tree, returning the tokens newly added.

        The insert is capacity-aware: if adding the suffix would exceed
        ``capacity_tokens`` the caller is expected to have evicted first;
        whatever does not fit is silently truncated (the cache holds a
        prefix of the sequence, which is always semantically valid).
        """
        tokens = tuple(tokens)
        node = self.root
        idx = 0
        added = 0
        n = len(tokens)
        while idx < n:
            child = node.children.get(tokens[idx])
            if child is None:
                remaining_capacity = self.capacity_tokens - self._total_tokens
                if remaining_capacity <= 0:
                    break
                take = int(min(n - idx, remaining_capacity))
                new_node = RadixNode(key=tokens[idx : idx + take], parent=node)
                new_node.last_access = now
                node.children[tokens[idx]] = new_node
                self._total_tokens += take
                self._evictable_tokens += take
                self._node_count += 1
                added += take
                self._note_leaf(new_node)
                break
            key = child.key
            klen = len(key)
            if klen <= n - idx and tokens[idx : idx + klen] == key:
                overlap = klen
            else:
                limit = min(klen, n - idx)
                overlap = 0
                while overlap < limit and key[overlap] == tokens[idx + overlap]:
                    overlap += 1
            child.last_access = now
            self._note_leaf(child)
            if overlap == klen:
                node = child
                idx += overlap
                continue
            # Split the edge at the divergence point.
            upper = self._split(child, overlap)
            node = upper
            idx += overlap
        return added

    def _split(self, node: RadixNode, offset: int) -> RadixNode:
        """Split ``node``'s edge so that its first ``offset`` tokens become a
        new parent node.  ``node`` keeps its identity as the *lower* half so
        that lock references held by running requests (which always cover the
        full original edge) keep protecting the whole path when they unlock.
        Returns the newly created upper node.
        """
        if not 0 < offset < len(node.key):
            raise ValueError("split offset must be strictly inside the edge")
        parent = node.parent
        assert parent is not None
        upper = RadixNode(key=node.key[:offset], parent=parent)
        upper.last_access = node.last_access
        # The lower half's lock holders all cover the upper half too, and
        # every hit on the old edge covered (at least) its upper half.
        upper.lock_count = node.lock_count
        upper.hit_count = node.hit_count
        parent.children[upper.key[0]] = upper
        node.key = node.key[offset:]
        node.parent = upper
        upper.children = {node.key[0]: node}
        self._node_count += 1
        # The edge's tokens are merely redistributed between the two halves
        # and both share the lock state, so ``_evictable_tokens`` is
        # unchanged.  The lower half's heap entries stay valid: validation
        # is by object identity and current attachment, not by key.
        return upper

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def lock(self, node: Optional[RadixNode]) -> None:
        """Pin ``node`` and all of its ancestors (a running request's prefix)."""
        while node is not None and not node.is_root:
            if node.lock_count == 0:
                self._evictable_tokens -= len(node.key)
            node.lock_count += 1
            node = node.parent

    def unlock(self, node: Optional[RadixNode]) -> None:
        """Release a previous :meth:`lock` on ``node``'s path."""
        while node is not None and not node.is_root:
            if node.lock_count <= 0:
                raise RuntimeError("unlock without matching lock")
            node.lock_count -= 1
            if node.lock_count == 0:
                self._evictable_tokens += len(node.key)
                self._note_leaf(node)
            node = node.parent

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evictable_tokens(self) -> int:
        """Tokens stored on unlocked edges (free-able memory)."""
        return self._evictable_tokens

    def evict(self, num_tokens: int, now: float = 0.0) -> int:
        """Evict at least ``num_tokens`` tokens if possible, LRU-leaf first.

        Returns the number of tokens actually evicted.  Locked nodes are
        never evicted.  Leaves sharing a ``last_access`` timestamp are
        evicted in the same (deterministic) order as the historical
        full-scan implementation, so eviction sequences are reproducible
        across both.
        """
        evicted = 0
        while evicted < num_tokens:
            victim = self._pop_lru_leaf()
            if victim is None:
                break
            if self.on_evict is not None:
                self.on_evict(
                    victim.path_tokens(), victim.hit_count, victim.last_access, now
                )
            evicted += self._remove_leaf(victim)
        return evicted

    @staticmethod
    def _entry_live(last_access: float, node: RadixNode) -> bool:
        """Is a heap entry still an accurate view of an unlocked leaf?"""
        return (
            last_access == node.last_access
            and not node.children
            and node.lock_count == 0
            and node.parent is not None
            and node.parent.children.get(node.key[0]) is node
        )

    def _pop_lru_leaf(self) -> Optional[RadixNode]:
        heap = self._leaf_heap
        while heap:
            last_access, entry_id, node = heappop(heap)
            if not self._entry_live(last_access, node):
                continue
            # Timestamp ties (whole prefill batches share one sim time) are
            # resolved exactly like the historical full-tree scan: first
            # minimum-``last_access`` leaf in its DFS order.  All entries at
            # this timestamp sit at the top of the heap; drain them, rank
            # the handful of live candidates by traversal position, and put
            # the losers back.
            tied: List[Tuple[float, int, RadixNode]] = []
            seen = {id(node)}
            while heap and heap[0][0] == last_access:
                entry = heappop(heap)
                competitor = entry[2]
                if id(competitor) not in seen and self._entry_live(last_access, competitor):
                    seen.add(id(competitor))
                    tied.append(entry)
                # Dead entries and duplicates of live ones are just dropped.
            if not tied:
                return node
            tied.append((last_access, entry_id, node))
            best = min(tied, key=lambda entry: self._dfs_order_key(entry[2]))
            for entry in tied:
                if entry is not best:
                    heappush(heap, entry)
            return best[2]
        return None

    @staticmethod
    def _dfs_order_key(node: RadixNode) -> Tuple[int, ...]:
        """Position of ``node`` in the historical scan's traversal order.

        The old full scan walked the tree with an explicit stack, visiting
        the *most recently added* sibling first at every level.  That order
        is reproduced here as a root-to-node tuple of reversed sibling
        ranks: lexicographically smaller keys are visited earlier.  Only
        computed for the few leaves tied on ``last_access``.
        """
        ranks: List[int] = []
        while node.parent is not None:
            siblings = list(node.parent.children.values())
            ranks.append(len(siblings) - 1 - siblings.index(node))
            node = node.parent
        ranks.reverse()
        return tuple(ranks)

    def _remove_leaf(self, node: RadixNode) -> int:
        assert node.parent is not None and not node.children
        parent = node.parent
        del parent.children[node.key[0]]
        self._total_tokens -= len(node.key)
        if node.lock_count == 0:
            self._evictable_tokens -= len(node.key)
        self._node_count -= 1
        self._note_leaf(parent)
        return len(node.key)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every unlocked entry (used by failure-recovery tests).

        A clear models *loss* (crash, reset), not memory pressure, so the
        demotion hook is bypassed: cleared entries never spill to tiers.
        """
        hook, self.on_evict = self.on_evict, None
        try:
            self.evict(self._total_tokens)
        finally:
            self.on_evict = hook

    def _iter_nodes(self) -> Iterable[RadixNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def check_invariants(self) -> None:
        """Verify structural invariants (used heavily by property tests)."""
        seen_tokens = 0
        seen_nodes = 0
        evictable = 0
        leaves: List[RadixNode] = []
        for node in self._iter_nodes():
            if node.is_root:
                if node.key != ():
                    raise AssertionError("root must have an empty key")
                continue
            if not node.key:
                raise AssertionError("non-root node with empty key")
            seen_tokens += node.num_tokens
            seen_nodes += 1
            if node.lock_count == 0:
                evictable += node.num_tokens
                if not node.children:
                    leaves.append(node)
            first = node.key[0]
            if node.parent.children.get(first) is not node:
                raise AssertionError("child index out of sync with key")
            # Sibling edges must not share a first token (radix property).
            siblings = [c for c in node.parent.children.values() if c is not node]
            for sibling in siblings:
                if sibling.key[0] == node.key[0]:
                    raise AssertionError("two sibling edges share a first token")
        if seen_tokens != self._total_tokens:
            raise AssertionError(
                f"token accounting mismatch: counted {seen_tokens}, recorded {self._total_tokens}"
            )
        if evictable != self._evictable_tokens:
            raise AssertionError(
                f"evictable accounting drift: counted {evictable}, recorded {self._evictable_tokens}"
            )
        if seen_nodes != self._node_count:
            raise AssertionError(
                f"node accounting mismatch: counted {seen_nodes}, recorded {self._node_count}"
            )
        if self._total_tokens > self.capacity_tokens:
            raise AssertionError("cache exceeded its capacity")
        visible = {
            id(node)
            for last_access, _, node in self._leaf_heap
            if last_access == node.last_access
            and not node.children
            and node.lock_count == 0
            and node.parent is not None
            and node.parent.children.get(node.key[0]) is node
        }
        for leaf in leaves:
            if id(leaf) not in visible:
                raise AssertionError("unlocked leaf missing from the eviction heap")
