"""Latency and memory cost models for a single model replica.

The paper evaluates ``meta-llama/Llama-3.1-8B-Instruct`` served by SGLang on
one NVIDIA L4 GPU.  We do not have the GPU, so the replica simulator uses an
analytical profile calibrated against the numbers the paper itself reports:

* a 512-token prefill takes roughly 300 ms on the L4 (§2.1),
* a continuous-batching step takes "tens of milliseconds" (§4.1),
* one replica sustains roughly 20--50 concurrent requests depending on
  request sizes (§3.3),
* per-token KV-cache memory for an 8B model in fp16 is about 128 KiB
  (2 bytes/elem x 2 (K and V) x 32 layers x 8 KV heads x 128 head dim).

The profile deliberately exposes only *observable* quantities (step
durations, memory capacity); nothing in the routing layer may peek at it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ModelProfile",
    "LLAMA_8B_L4",
    "LLAMA_8B_A100",
    "TINY_TEST_PROFILE",
    "PERFORMANCE_LEVELS",
    "resolve_performance_scale",
]

GiB = 1024 ** 3
KiB = 1024

#: Named performance levels for gray-failure (slow-but-alive) replicas.
#: The values are compute-rate multipliers: a replica at ``thermal-throttle``
#: runs prefill/decode compute at 55% of nominal speed.  The names mirror the
#: frequency-control knobs exposed by tools like pepc (P-states, uncore
#: frequency, RAPL power caps) without modelling the hardware itself.
PERFORMANCE_LEVELS = {
    "nominal": 1.0,
    "uncore-degraded": 0.85,
    "power-cap": 0.72,
    "thermal-throttle": 0.55,
    "p-state-floor": 0.40,
}


def resolve_performance_scale(level) -> float:
    """Resolve a performance level to a compute-rate multiplier.

    ``level`` may be one of the :data:`PERFORMANCE_LEVELS` names or a float
    in ``(0, 1]`` for an explicit multiplier.
    """
    if isinstance(level, str):
        try:
            return PERFORMANCE_LEVELS[level]
        except KeyError:
            raise ValueError(
                f"unknown performance level {level!r}; "
                f"known: {sorted(PERFORMANCE_LEVELS)}"
            ) from None
    scale = float(level)
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"performance scale must be in (0, 1], got {scale}")
    return scale


@dataclass(frozen=True)
class ModelProfile:
    """Analytical performance/memory model of one model replica.

    All latencies are in seconds, all memory in bytes.
    """

    name: str
    #: Fixed overhead per prefill batch (kernel launches, scheduling).
    prefill_base_s: float
    #: Marginal prefill time per *uncached* prompt token.
    prefill_per_token_s: float
    #: Fixed overhead per decode step (one token for every running request).
    decode_base_s: float
    #: Marginal decode time per running request in the batch.
    decode_per_seq_s: float
    #: Marginal decode time per thousand tokens of KV context attended to.
    decode_per_kilotoken_s: float
    #: KV-cache bytes needed per token.
    kv_bytes_per_token: int
    #: Total GPU memory.
    gpu_memory_bytes: int
    #: Memory consumed by model weights + activations + CUDA graphs.
    weight_memory_bytes: int
    #: Maximum number of sequences the engine will run concurrently.
    max_batch_size: int = 64
    #: Fraction of the remaining memory usable for KV cache (vLLM-style
    #: gpu_memory_utilization safety margin).
    kv_memory_fraction: float = 0.9
    #: Number of output tokens of KV memory reserved when admitting a
    #: request (the engine must leave room for the sequence to grow).
    admission_output_reserve: int = 64

    # ------------------------------------------------------------------
    @property
    def kv_capacity_bytes(self) -> int:
        """Bytes available for the KV cache after weights are loaded."""
        usable = self.gpu_memory_bytes - self.weight_memory_bytes
        if usable <= 0:
            raise ValueError(
                f"profile {self.name!r}: weights do not fit in GPU memory"
            )
        return int(usable * self.kv_memory_fraction)

    @property
    def kv_capacity_tokens(self) -> int:
        """Total number of tokens the KV cache can hold."""
        return self.kv_capacity_bytes // self.kv_bytes_per_token

    # ------------------------------------------------------------------
    def prefill_time(self, new_tokens: int) -> float:
        """Time to prefill ``new_tokens`` uncached prompt tokens.

        Cached prefix tokens are skipped entirely, which is how prefix-cache
        hits translate into lower TTFT.
        """
        if new_tokens < 0:
            raise ValueError("new_tokens must be non-negative")
        if new_tokens == 0:
            # Even a fully-cached prompt needs one step to emit its first
            # token (it still runs a single decode-like forward pass).
            return self.decode_base_s + self.decode_per_seq_s
        return self.prefill_base_s + new_tokens * self.prefill_per_token_s

    def decode_step_time(self, batch_size: int, context_tokens: int) -> float:
        """Time for one continuous-batching decode step.

        Parameters
        ----------
        batch_size:
            Number of running sequences (each produces one token).
        context_tokens:
            Total KV tokens attended to across the batch.
        """
        if batch_size <= 0:
            raise ValueError("decode step requires at least one sequence")
        return (
            self.decode_base_s
            + batch_size * self.decode_per_seq_s
            + (context_tokens / 1000.0) * self.decode_per_kilotoken_s
        )

    def tokens_to_bytes(self, tokens: int) -> int:
        """KV memory, in bytes, needed to hold ``tokens`` tokens."""
        return tokens * self.kv_bytes_per_token


#: Llama-3.1-8B-Instruct on one NVIDIA L4 (24 GiB), the paper's setup.
#: The 256-token admission reserve mirrors how serving engines hold back a
#: margin of KV blocks for each newly admitted sequence; growth beyond the
#: reserve is handled by preemption and recomputation.
LLAMA_8B_L4 = ModelProfile(
    name="llama-3.1-8b-instruct/L4",
    prefill_base_s=0.020,
    prefill_per_token_s=0.300 / 512,       # ~300 ms for a 512-token prompt
    decode_base_s=0.025,
    decode_per_seq_s=0.0008,
    decode_per_kilotoken_s=0.0006,
    kv_bytes_per_token=128 * KiB,
    gpu_memory_bytes=24 * GiB,
    weight_memory_bytes=16 * GiB,
    max_batch_size=64,
    admission_output_reserve=256,
)

#: The same model on an A100-80GB; used by heterogeneity examples/ablation.
LLAMA_8B_A100 = ModelProfile(
    name="llama-3.1-8b-instruct/A100-80GB",
    prefill_base_s=0.010,
    prefill_per_token_s=0.060 / 512,
    decode_base_s=0.012,
    decode_per_seq_s=0.0003,
    decode_per_kilotoken_s=0.0002,
    kv_bytes_per_token=128 * KiB,
    gpu_memory_bytes=80 * GiB,
    weight_memory_bytes=17 * GiB,
    max_batch_size=256,
)

#: A tiny, fast profile for unit tests: small capacity so tests can exercise
#: memory pressure and pending queues without simulating thousands of tokens.
TINY_TEST_PROFILE = ModelProfile(
    name="tiny-test",
    prefill_base_s=0.001,
    prefill_per_token_s=0.0001,
    decode_base_s=0.002,
    decode_per_seq_s=0.0001,
    decode_per_kilotoken_s=0.0001,
    kv_bytes_per_token=1,
    gpu_memory_bytes=3_000,
    weight_memory_bytes=1_000,
    max_batch_size=8,
    kv_memory_fraction=1.0,
    admission_output_reserve=8,
)
