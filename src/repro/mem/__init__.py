"""Multi-tier, page-aligned KV memory model (``repro.mem``).

The flat token budget of :mod:`repro.replica.memory` becomes a hierarchy:

* :mod:`repro.mem.paging` -- page-aligned allocation (sglang-style pools):
  capacity rounding, internal fragmentation, LIFO free-list reuse.
* :mod:`repro.mem.tiers` -- HBM <-> host RAM <-> disk tier stores with a
  shared transfer engine charging latency + bytes/bandwidth through the sim
  clock (async demotions, synchronous promotion stalls).
* :mod:`repro.mem.policies` -- ``register_offload_policy`` /
  ``register_admission_policy`` registries with built-ins ``never-offload``
  (the legacy-equivalent default), ``lru-demote`` and ``pin-hot-prefixes``.
* :mod:`repro.mem.config` -- the picklable :class:`MemoryConfig` carried by
  ``ClusterConfig`` into sweep workers.

See ``docs/MEMORY.md`` for the model and the determinism contract.
"""

from .config import DEFAULT_MEMORY_CONFIG, MemoryConfig
from .paging import PageAllocator, PageBlock, round_to_pages
from .policies import (
    AdmissionPolicy,
    AdmitAll,
    LruDemote,
    NeverOffload,
    OffloadPolicy,
    PinHotPrefixes,
    SegmentMeta,
    SizeCap,
    admission_policy_factories,
    make_admission_policy,
    make_offload_policy,
    offload_policy_factories,
    register_admission_policy,
    register_offload_policy,
    registered_admission_policies,
    registered_offload_policies,
    unregister_admission_policy,
    unregister_offload_policy,
)
from .tiers import TieredKVStore, TierSegment, TierSpec, TierStore, TransferModel

__all__ = [
    "MemoryConfig",
    "DEFAULT_MEMORY_CONFIG",
    "PageAllocator",
    "PageBlock",
    "round_to_pages",
    "TransferModel",
    "TierSpec",
    "TierSegment",
    "TierStore",
    "TieredKVStore",
    "SegmentMeta",
    "OffloadPolicy",
    "AdmissionPolicy",
    "NeverOffload",
    "LruDemote",
    "PinHotPrefixes",
    "AdmitAll",
    "SizeCap",
    "register_offload_policy",
    "unregister_offload_policy",
    "registered_offload_policies",
    "make_offload_policy",
    "register_admission_policy",
    "unregister_admission_policy",
    "registered_admission_policies",
    "make_admission_policy",
    "offload_policy_factories",
    "admission_policy_factories",
]
