"""Offload and admission policies for the tiered KV store.

Two registries, following the pushing/constraint/selection/fault pattern
(:class:`repro.core._registry.NameRegistry`): configs carry only the
(picklable) policy *name* plus scalar knobs, and the policy object is
instantiated wherever the replica is built -- including inside sweep worker
processes.

* An **offload policy** decides where an HBM (or host-tier) eviction victim
  goes: a lower tier, or nowhere (dropped -- the legacy behaviour).
* An **admission policy** decides whether a lower tier accepts a segment a
  policy wants to place there (size caps, hotness gates, ...).

Built-in offload policies:

``never-offload``
    Victims vanish, exactly like the flat single-tier cache.  This is the
    default and is *legacy-equivalent by construction*: the tiered store is
    never even built, so event sequences stay bit-identical.
``lru-demote``
    Victims cascade one tier down (HBM -> host -> disk) in LRU order;
    a tier's own victims continue downward until the bottom tier drops them.
``pin-hot-prefixes``
    Victims with at least ``hot_hits`` lifetime prefix hits demote to the
    uppermost lower tier and are *pinned* there (skipped by that tier's
    eviction while anything unpinned remains); cold victims go straight to
    the bottom tier.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional, Tuple

from .._registry import NameRegistry

__all__ = [
    "SegmentMeta",
    "OffloadPolicy",
    "AdmissionPolicy",
    "NeverOffload",
    "LruDemote",
    "PinHotPrefixes",
    "AdmitAll",
    "SizeCap",
    "register_offload_policy",
    "unregister_offload_policy",
    "registered_offload_policies",
    "make_offload_policy",
    "register_admission_policy",
    "unregister_admission_policy",
    "registered_admission_policies",
    "make_admission_policy",
    "offload_policy_factories",
    "admission_policy_factories",
]


class SegmentMeta(NamedTuple):
    """What policies may know about a KV segment being moved."""

    num_tokens: int
    #: Lifetime prefix-hit count of the segment's deepest node.
    hits: int
    #: Simulation time of the segment's last touch.
    last_access: float


# ----------------------------------------------------------------------
# policy interfaces
# ----------------------------------------------------------------------
class OffloadPolicy:
    """Decides where an eviction victim goes (and whether it is pinned)."""

    name: str = "abstract"
    #: Inert policies never offload anything; the store skips the eviction
    #: callback entirely so the hot path stays byte-identical to legacy.
    inert: bool = False

    def demote_target(
        self, meta: SegmentMeta, from_tier: str, lower_tiers: Tuple[str, ...]
    ) -> Optional[str]:
        """Tier that should receive this victim, or ``None`` to drop it.

        ``lower_tiers`` lists the non-zero-capacity tiers strictly below
        ``from_tier``, top-down (e.g. ``("host", "disk")`` for an HBM
        victim).  Returning a name not in that tuple is an error.
        """
        raise NotImplementedError

    def pin(self, meta: SegmentMeta, tier: str) -> bool:
        """Should the receiving tier pin this segment against eviction?"""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__}>"


class AdmissionPolicy:
    """Decides whether a tier accepts a segment offered to it."""

    name: str = "abstract"

    def admit(self, meta: SegmentMeta, tier: str) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__}>"


# ----------------------------------------------------------------------
# the registries
# ----------------------------------------------------------------------
_OFFLOAD_POLICIES = NameRegistry("offload policy", plural="policies")
_ADMISSION_POLICIES = NameRegistry("admission policy", plural="policies")

PolicyFactory = Callable[..., object]


def register_offload_policy(
    name: str, *, replace_existing: bool = False
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Register an offload-policy factory under ``name`` (case-insensitive).

    Same extension pattern as ``@register_pushing_policy``: decorate a class
    (or factory taking keyword arguments) and the name becomes resolvable
    everywhere a built-in is -- ``MemoryConfig.offload`` and
    :func:`make_offload_policy`, including inside sweep workers.
    """
    return _OFFLOAD_POLICIES.register(name, replace_existing=replace_existing)


def unregister_offload_policy(name: str) -> None:
    """Remove a registered offload policy (mainly for test cleanup)."""
    _OFFLOAD_POLICIES.unregister(name)


def registered_offload_policies() -> Tuple[str, ...]:
    return _OFFLOAD_POLICIES.names()


def make_offload_policy(name: str, **kwargs) -> OffloadPolicy:
    """Instantiate a registered offload policy by name."""
    return _OFFLOAD_POLICIES.make(name, **kwargs)


def register_admission_policy(
    name: str, *, replace_existing: bool = False
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Register an admission-policy factory under ``name``."""
    return _ADMISSION_POLICIES.register(name, replace_existing=replace_existing)


def unregister_admission_policy(name: str) -> None:
    _ADMISSION_POLICIES.unregister(name)


def registered_admission_policies() -> Tuple[str, ...]:
    return _ADMISSION_POLICIES.names()


def make_admission_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate a registered admission policy by name."""
    return _ADMISSION_POLICIES.make(name, **kwargs)


def offload_policy_factories() -> Tuple[PolicyFactory, ...]:
    """Registered factories (for the sweep workers' spawn bootstrap)."""
    return tuple(_OFFLOAD_POLICIES._factories.values())


def admission_policy_factories() -> Tuple[PolicyFactory, ...]:
    return tuple(_ADMISSION_POLICIES._factories.values())


# ----------------------------------------------------------------------
# built-in offload policies
# ----------------------------------------------------------------------
@register_offload_policy("never-offload")
class NeverOffload(OffloadPolicy):
    """Drop every victim -- the legacy single-tier behaviour (default)."""

    name = "never-offload"
    inert = True

    def demote_target(
        self, meta: SegmentMeta, from_tier: str, lower_tiers: Tuple[str, ...]
    ) -> Optional[str]:
        return None


@register_offload_policy("lru-demote")
class LruDemote(OffloadPolicy):
    """Cascade victims one tier down; the bottom tier's victims are dropped."""

    name = "lru-demote"

    def demote_target(
        self, meta: SegmentMeta, from_tier: str, lower_tiers: Tuple[str, ...]
    ) -> Optional[str]:
        return lower_tiers[0] if lower_tiers else None


@register_offload_policy("pin-hot-prefixes")
class PinHotPrefixes(OffloadPolicy):
    """Keep frequently re-matched prefixes close: hot victims demote one
    tier and are pinned there; cold victims sink to the bottom tier.

    Parameters
    ----------
    hot_hits:
        Minimum lifetime prefix-hit count for a victim to count as hot.
    """

    name = "pin-hot-prefixes"

    def __init__(self, hot_hits: int = 2) -> None:
        if hot_hits < 1:
            raise ValueError("hot_hits must be at least 1")
        self.hot_hits = hot_hits

    def demote_target(
        self, meta: SegmentMeta, from_tier: str, lower_tiers: Tuple[str, ...]
    ) -> Optional[str]:
        if not lower_tiers:
            return None
        if meta.hits >= self.hot_hits:
            return lower_tiers[0]
        return lower_tiers[-1]

    def pin(self, meta: SegmentMeta, tier: str) -> bool:
        return meta.hits >= self.hot_hits

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<PinHotPrefixes hot_hits={self.hot_hits}>"


# ----------------------------------------------------------------------
# built-in admission policies
# ----------------------------------------------------------------------
@register_admission_policy("admit-all")
class AdmitAll(AdmissionPolicy):
    """Accept every offered segment (default)."""

    name = "admit-all"

    def admit(self, meta: SegmentMeta, tier: str) -> bool:
        return True


@register_admission_policy("size-cap")
class SizeCap(AdmissionPolicy):
    """Reject segments longer than ``max_tokens`` (huge one-off prompts
    would churn a small host tier without ever being re-matched)."""

    name = "size-cap"

    def __init__(self, max_tokens: int = 8192) -> None:
        if max_tokens < 1:
            raise ValueError("max_tokens must be at least 1")
        self.max_tokens = max_tokens

    def admit(self, meta: SegmentMeta, tier: str) -> bool:
        return meta.num_tokens <= self.max_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<SizeCap max_tokens={self.max_tokens}>"
