"""Page-aligned KV allocation, modelled after sglang's token pools.

Real engines do not hand out KV memory token by token: sglang's
``token_to_kv_pool`` allocates in *pages* of ``page_size`` token slots and
rounds the pool itself down to a whole number of pages
(``max_total_num_tokens // page_size * page_size``).  Two consequences the
flat token-budget model cannot express:

* **internal fragmentation** -- a sequence of ``n`` tokens pins
  ``ceil(n / page_size)`` pages, so the pool "fills up" before the token
  counter says so, and
* **free-list reuse** -- freed pages go on a free list and are handed out
  LIFO, so occupancy is a page count, not a token count.

:class:`PageAllocator` reproduces both with O(1) running counters
(``used_pages`` / ``free_pages`` / ``used_tokens`` / ``slack_tokens``)
whose drift is checked against a full recount by :meth:`check_invariants`.
``bytes_per_token`` (snippet-1 style accounting: bytes = 2 * layers *
kv-heads * head-dim * dtype-size) turns token counts into byte occupancy
for the tier-transfer cost model in :mod:`repro.mem.tiers`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["PageBlock", "PageAllocator", "round_to_pages"]


def round_to_pages(capacity_tokens: int, page_size: int) -> int:
    """Round a token budget *down* to a whole number of pages.

    This is sglang's ``max_total_num_tokens // page_size * page_size``: the
    trailing partial page can never be allocated, so it is excluded from the
    usable capacity up front.
    """
    if page_size < 1:
        raise ValueError("page_size must be at least 1")
    if capacity_tokens < 0:
        raise ValueError("capacity_tokens must be non-negative")
    return capacity_tokens // page_size * page_size


@dataclass(frozen=True)
class PageBlock:
    """One allocation: a run of whole pages backing ``tokens`` token slots.

    ``pages`` are the page indices (stable for the block's lifetime), kept
    so tests can assert free-list reuse; ``slack`` is the internal
    fragmentation (allocated-but-unused token slots in the last page).
    """

    block_id: int
    tokens: int
    pages: Tuple[int, ...] = field(repr=False)

    @property
    def num_pages(self) -> int:
        return len(self.pages)


class PageAllocator:
    """A page-granular token-slot allocator with LIFO free-list reuse.

    Parameters
    ----------
    capacity_tokens:
        Raw token budget; rounded down to a page multiple (the usable
        capacity is :attr:`capacity_tokens` after construction).
    page_size:
        Token slots per page.  ``page_size=1`` makes every quantity
        token-granular, i.e. exactly the legacy flat accounting.
    bytes_per_token:
        KV bytes per token slot, for byte-level occupancy/transfer sizes.
    """

    def __init__(
        self,
        capacity_tokens: int,
        page_size: int = 1,
        bytes_per_token: int = 0,
    ) -> None:
        if bytes_per_token < 0:
            raise ValueError("bytes_per_token must be non-negative")
        self.page_size = page_size
        self.capacity_tokens = round_to_pages(capacity_tokens, page_size)
        self.num_pages = self.capacity_tokens // page_size
        self.bytes_per_token = bytes_per_token
        #: Freed page indices, reused LIFO (hot pages stay cache-warm in a
        #: real allocator; here it pins a deterministic reuse order).
        self._free_list: List[int] = []
        #: First never-allocated page index.
        self._next_page = 0
        self._blocks: Dict[int, PageBlock] = {}
        self._block_ids = itertools.count()
        # O(1) running counters (drift-checked by check_invariants).
        self._used_pages = 0
        self._used_tokens = 0
        self._slack_tokens = 0

    # ------------------------------------------------------------------
    # O(1) occupancy counters
    # ------------------------------------------------------------------
    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def free_pages(self) -> int:
        return self.num_pages - self._used_pages

    @property
    def used_tokens(self) -> int:
        """Token slots actually holding data (excludes page slack)."""
        return self._used_tokens

    @property
    def free_tokens(self) -> int:
        """Token slots still allocatable (whole free pages only)."""
        return self.free_pages * self.page_size

    @property
    def slack_tokens(self) -> int:
        """Allocated-but-unused slots: the internal fragmentation."""
        return self._slack_tokens

    @property
    def used_bytes(self) -> int:
        return self._used_tokens * self.bytes_per_token

    @property
    def page_occupancy(self) -> float:
        """Fraction of pages in use (the figure-12 occupancy metric)."""
        if self.num_pages == 0:
            return 0.0
        return self._used_pages / self.num_pages

    def bytes_for(self, tokens: int) -> int:
        return tokens * self.bytes_per_token

    # ------------------------------------------------------------------
    def pages_needed(self, tokens: int) -> int:
        """Pages a ``tokens``-slot allocation pins (ceil division)."""
        if tokens <= 0:
            return 0
        return -(-tokens // self.page_size)

    def can_alloc(self, tokens: int) -> bool:
        return self.pages_needed(tokens) <= self.free_pages

    def alloc(self, tokens: int) -> PageBlock:
        """Allocate whole pages for ``tokens`` token slots.

        Raises :class:`MemoryError` when not enough free pages exist; the
        caller decides whether to evict and retry (tier stores do).
        """
        if tokens <= 0:
            raise ValueError("allocations must cover at least one token")
        needed = self.pages_needed(tokens)
        if needed > self.free_pages:
            raise MemoryError(
                f"need {needed} pages, only {self.free_pages} free "
                f"(page_size={self.page_size})"
            )
        pages: List[int] = []
        while len(pages) < needed and self._free_list:
            pages.append(self._free_list.pop())
        while len(pages) < needed:
            pages.append(self._next_page)
            self._next_page += 1
        block = PageBlock(block_id=next(self._block_ids), tokens=tokens, pages=tuple(pages))
        self._blocks[block.block_id] = block
        self._used_pages += needed
        self._used_tokens += tokens
        self._slack_tokens += needed * self.page_size - tokens
        return block

    def free(self, block: PageBlock) -> None:
        """Return a block's pages to the free list (LIFO reuse order)."""
        if self._blocks.pop(block.block_id, None) is None:
            raise KeyError(f"block {block.block_id} is not live")
        self._free_list.extend(reversed(block.pages))
        self._used_pages -= block.num_pages
        self._used_tokens -= block.tokens
        self._slack_tokens -= block.num_pages * self.page_size - block.tokens

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Recount everything and compare against the O(1) counters."""
        used_pages = sum(block.num_pages for block in self._blocks.values())
        used_tokens = sum(block.tokens for block in self._blocks.values())
        slack = used_pages * self.page_size - used_tokens
        if used_pages != self._used_pages:
            raise AssertionError(
                f"used_pages drifted: counted {used_pages}, recorded {self._used_pages}"
            )
        if used_tokens != self._used_tokens:
            raise AssertionError(
                f"used_tokens drifted: counted {used_tokens}, recorded {self._used_tokens}"
            )
        if slack != self._slack_tokens:
            raise AssertionError(
                f"slack_tokens drifted: counted {slack}, recorded {self._slack_tokens}"
            )
        if self._used_pages + len(self._free_list) + (self.num_pages - self._next_page) != self.num_pages:
            raise AssertionError("page conservation violated (leak or double free)")
        live_pages = {page for block in self._blocks.values() for page in block.pages}
        if len(live_pages) != used_pages:
            raise AssertionError("two live blocks share a page")
        if live_pages & set(self._free_list):
            raise AssertionError("a live page is also on the free list")
        if self.capacity_tokens != self.num_pages * self.page_size:
            raise AssertionError("capacity not page-aligned")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<PageAllocator pages={self._used_pages}/{self.num_pages} "
            f"page_size={self.page_size} slack={self._slack_tokens}>"
        )
