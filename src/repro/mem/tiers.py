"""Tiered KV storage: HBM <-> host RAM <-> disk with transfer costs.

The replica's :class:`~repro.replica.kv_cache.RadixCache` stays the HBM
tier (token-granular radix sharing, exactly as before); this module models
what real engines layer *underneath* it:

* **offload tiers** (host RAM, NVMe) holding whole KV *segments* -- the
  contiguous token runs of evicted prefixes -- backed by a page-aligned
  :class:`~repro.mem.paging.PageAllocator` per tier, and
* a **transfer engine** charging every tier crossing a fixed latency plus
  ``bytes / bandwidth`` through the simulation clock.  Demotions are
  asynchronous (they occupy the engine but never stall the compute path);
  promotions are synchronous (a prefill that wants cold KV waits for the
  engine to be free, then for the copy), which is what turns tier sizing
  into the TTFT-vs-hit-rate trade-off of the Fig. 12 sweep.

Segment lookup is by longest common prefix against the stored segments,
bucketed by the first few tokens so the common case (a multi-turn prompt
re-sending history that was demoted verbatim) costs one dict hit plus one
tuple compare.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from .paging import PageAllocator, PageBlock
from .policies import AdmissionPolicy, OffloadPolicy, SegmentMeta

__all__ = ["TransferModel", "TierSpec", "TierSegment", "TierStore", "TieredKVStore"]

#: Tokens used to bucket segments for prefix lookup.
_BUCKET_TOKENS = 8


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth cost of moving KV bytes across one boundary."""

    latency_s: float
    bandwidth_bytes_per_s: float
    bytes_per_token: int

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be positive")

    def bytes_for(self, tokens: int) -> int:
        return tokens * self.bytes_per_token

    def delay_s(self, tokens: int) -> float:
        """Wire time for ``tokens`` worth of KV across this boundary."""
        return self.latency_s + self.bytes_for(tokens) / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class TierSpec:
    """Capacity and transfer cost of one offload tier."""

    name: str
    capacity_tokens: int
    transfer: TransferModel


class TierSegment:
    """One offloaded KV segment resident in a tier."""

    __slots__ = ("entry_id", "tokens", "block", "last_access", "hits", "pinned")

    def __init__(
        self,
        entry_id: int,
        tokens: Tuple[int, ...],
        block: PageBlock,
        last_access: float,
        hits: int,
        pinned: bool,
    ) -> None:
        self.entry_id = entry_id
        self.tokens = tokens
        self.block = block
        self.last_access = last_access
        self.hits = hits
        self.pinned = pinned

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    def meta(self) -> SegmentMeta:
        return SegmentMeta(
            num_tokens=len(self.tokens), hits=self.hits, last_access=self.last_access
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<TierSegment id={self.entry_id} tokens={len(self.tokens)} "
            f"hits={self.hits}{' pinned' if self.pinned else ''}>"
        )


class TierStore:
    """Segments of one offload tier, with page accounting and LRU eviction.

    Unlike the HBM radix tree, an offload tier stores whole segments:
    an evicted prefix is copied out as one contiguous page run, so there is
    no token-level sharing between segments (this matches how engines spill
    KV -- block copies, not tree surgery).  Deduplication still happens at
    ``put`` time: a segment that is a prefix of (or extends) a stored one
    replaces rather than duplicates it.
    """

    def __init__(self, spec: TierSpec, page_size: int) -> None:
        self.spec = spec
        self.name = spec.name
        self.allocator = PageAllocator(
            spec.capacity_tokens, page_size, spec.transfer.bytes_per_token
        )
        self._segments: Dict[int, TierSegment] = {}
        #: Prefix-lookup buckets: first-``_BUCKET_TOKENS`` tokens -> entry ids.
        self._buckets: Dict[Tuple[int, ...], List[int]] = {}
        self._entry_ids = itertools.count()
        #: Lazy LRU heap of ``(last_access, entry_id)``; stale entries are
        #: dropped at pop time (same pattern as the radix cache's leaf heap).
        self._lru_heap: List[Tuple[float, int]] = []
        # Monotonic telemetry.
        self.inserted_tokens = 0
        self.evicted_tokens = 0

    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def used_tokens(self) -> int:
        return self.allocator.used_tokens

    @property
    def capacity_tokens(self) -> int:
        return self.allocator.capacity_tokens

    def _bucket_key(self, tokens: Tuple[int, ...]) -> Tuple[int, ...]:
        return tokens[:_BUCKET_TOKENS]

    def _note_lru(self, segment: TierSegment) -> None:
        heappush(self._lru_heap, (segment.last_access, segment.entry_id))

    # ------------------------------------------------------------------
    def put(
        self, tokens: Tuple[int, ...], hits: int, now: float, *, pinned: bool = False
    ) -> Tuple[Optional[TierSegment], List[TierSegment]]:
        """Store a segment, evicting LRU segments if needed.

        Returns ``(stored, evicted)``: the resident segment (``None`` when
        the segment cannot fit even after evicting everything unpinned, or
        is already covered by a stored segment) and the victims displaced to
        make room, oldest first -- the tiered store cascades those downward.
        """
        if not tokens:
            return None, []
        key = self._bucket_key(tokens)
        # Dedup within the bucket: keep the longer of overlapping segments.
        for entry_id in self._buckets.get(key, ()):
            existing = self._segments[entry_id]
            shorter = min(len(existing.tokens), len(tokens))
            if existing.tokens[:shorter] != tokens[:shorter]:
                continue
            if len(existing.tokens) >= len(tokens):
                # Already covered: refresh recency/heat, store nothing.
                existing.last_access = now
                existing.hits = max(existing.hits, hits)
                existing.pinned = existing.pinned or pinned
                self._note_lru(existing)
                return None, []
            # The new segment extends a stored one: replace it.
            pinned = pinned or existing.pinned
            hits = max(hits, existing.hits)
            self._remove(existing)
            break
        evicted: List[TierSegment] = []
        needed = self.allocator.pages_needed(len(tokens))
        if needed > self.allocator.num_pages:
            return None, evicted
        while needed > self.allocator.free_pages:
            victim = self._pop_lru()
            if victim is None:
                return None, evicted
            self._remove(victim)
            self.evicted_tokens += victim.num_tokens
            evicted.append(victim)
        block = self.allocator.alloc(len(tokens))
        segment = TierSegment(
            entry_id=next(self._entry_ids),
            tokens=tokens,
            block=block,
            last_access=now,
            hits=hits,
            pinned=pinned,
        )
        self._segments[segment.entry_id] = segment
        self._buckets.setdefault(key, []).append(segment.entry_id)
        self._note_lru(segment)
        self.inserted_tokens += len(tokens)
        return segment, evicted

    def _remove(self, segment: TierSegment) -> None:
        del self._segments[segment.entry_id]
        bucket = self._buckets[self._bucket_key(segment.tokens)]
        bucket.remove(segment.entry_id)
        if not bucket:
            del self._buckets[self._bucket_key(segment.tokens)]
        self.allocator.free(segment.block)

    def _pop_lru(self) -> Optional[TierSegment]:
        """Oldest unpinned segment; pinned ones only when nothing else is
        left (a fully pinned tier must still be evictable or it deadlocks)."""
        deferred: List[Tuple[float, int]] = []
        victim: Optional[TierSegment] = None
        while self._lru_heap:
            last_access, entry_id = heappop(self._lru_heap)
            segment = self._segments.get(entry_id)
            if segment is None or segment.last_access != last_access:
                continue
            if segment.pinned:
                deferred.append((last_access, entry_id))
                continue
            victim = segment
            break
        for entry in deferred:
            heappush(self._lru_heap, entry)
        if victim is not None:
            return victim
        if deferred:
            oldest = min(deferred)
            return self._segments[oldest[1]]
        return None

    # ------------------------------------------------------------------
    def match(self, tokens: Tuple[int, ...]) -> Tuple[int, Optional[TierSegment]]:
        """Longest common prefix between ``tokens`` and any stored segment."""
        best_len = 0
        best: Optional[TierSegment] = None
        for entry_id in self._buckets.get(self._bucket_key(tokens), ()):
            segment = self._segments[entry_id]
            stored = segment.tokens
            limit = min(len(stored), len(tokens))
            if stored[:limit] == tokens[:limit]:
                overlap = limit
            else:
                overlap = 0
                while overlap < limit and stored[overlap] == tokens[overlap]:
                    overlap += 1
            if overlap > best_len or (
                overlap == best_len and best is not None and segment.entry_id < best.entry_id
            ):
                best_len = overlap
                best = segment
        if len(tokens) < _BUCKET_TOKENS:
            # Short prompts may prefix-match longer segments in other
            # buckets only if those share the whole prompt; covered above
            # because their bucket key starts with the prompt -- scan them.
            for key, entry_ids in self._buckets.items():
                if key[: len(tokens)] != tokens:
                    continue
                for entry_id in entry_ids:
                    segment = self._segments[entry_id]
                    if len(tokens) > best_len:
                        best_len = len(tokens)
                        best = segment
        return best_len, best

    def take(self, segment: TierSegment) -> None:
        """Remove a segment (promotion to a higher tier)."""
        self._remove(segment)

    def touch(self, segment: TierSegment, now: float) -> None:
        segment.last_access = now
        self._note_lru(segment)

    # ------------------------------------------------------------------
    def export(self) -> List[Tuple[Tuple[int, ...], int, float, bool]]:
        """Snapshot for crash-survivable tiers (token data + heat)."""
        return [
            (seg.tokens, seg.hits, seg.last_access, seg.pinned)
            for seg in sorted(self._segments.values(), key=lambda s: s.entry_id)
        ]

    def check_invariants(self) -> None:
        self.allocator.check_invariants()
        indexed = {eid for ids in self._buckets.values() for eid in ids}
        if indexed != set(self._segments):
            raise AssertionError("tier bucket index out of sync with segments")
        if self.allocator.num_blocks != len(self._segments):
            raise AssertionError("tier allocator blocks out of sync with segments")
        if self.allocator.used_tokens != sum(s.num_tokens for s in self._segments.values()):
            raise AssertionError("tier token accounting drifted")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<TierStore {self.name} segments={len(self._segments)} "
            f"tokens={self.used_tokens}/{self.capacity_tokens}>"
        )


class TieredKVStore:
    """The offload tiers under one replica's HBM radix cache.

    Routing is policy-driven: the offload policy picks the destination tier
    for every eviction victim (HBM victims and cascading tier victims
    alike), the admission policy can refuse a segment, and all byte
    movement shares one transfer engine whose busy time serialises through
    :attr:`engine_free_at` -- demotions are fire-and-forget, promotions
    stall the requesting prefill until the copy lands.
    """

    def __init__(
        self,
        tiers: Sequence[TierSpec],
        offload_policy: OffloadPolicy,
        admission_policy: AdmissionPolicy,
        *,
        page_size: int = 1,
    ) -> None:
        self.stores: Dict[str, TierStore] = {}
        order: List[str] = []
        for spec in tiers:
            if spec.capacity_tokens <= 0:
                continue
            if spec.name in self.stores:
                raise ValueError(f"duplicate tier name {spec.name!r}")
            self.stores[spec.name] = TierStore(spec, page_size)
            order.append(spec.name)
        self.order: Tuple[str, ...] = tuple(order)
        self.offload_policy = offload_policy
        self.admission_policy = admission_policy
        #: Simulation time the shared transfer engine is next idle.
        self.engine_free_at = 0.0
        # Monotonic telemetry (the MemoryMetrics inputs).
        self.demoted_tokens = 0
        self.demotion_bytes = 0
        self.promoted_tokens = 0
        self.promotion_bytes = 0
        self.transfer_stall_s = 0.0
        self.dropped_tokens = 0
        self.tier_hit_tokens: Dict[str, int] = {name: 0 for name in order}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self.order)

    def lower_tiers(self, from_tier: str) -> Tuple[str, ...]:
        """Tier names strictly below ``from_tier`` ("hbm" is above all)."""
        if from_tier == "hbm":
            return self.order
        if from_tier not in self.stores:
            return ()
        idx = self.order.index(from_tier)
        return self.order[idx + 1 :]

    def _engine_busy(self, duration_s: float, now: float) -> None:
        """Occupy the transfer engine without stalling the caller."""
        self.engine_free_at = max(self.engine_free_at, now) + duration_s

    # ------------------------------------------------------------------
    # demotion (HBM victims and cascading tier victims)
    # ------------------------------------------------------------------
    def demote(
        self, tokens: Tuple[int, ...], hits: int, last_access: float, now: float,
        *, from_tier: str = "hbm",
    ) -> None:
        """Route one eviction victim through the offload policy."""
        if not tokens or not self.enabled:
            self.dropped_tokens += len(tokens)
            return
        meta = SegmentMeta(num_tokens=len(tokens), hits=hits, last_access=last_access)
        target = self.offload_policy.demote_target(
            meta, from_tier, self.lower_tiers(from_tier)
        )
        if target is None:
            self.dropped_tokens += len(tokens)
            return
        if target not in self.stores or target not in self.lower_tiers(from_tier):
            raise ValueError(
                f"offload policy routed a {from_tier!r} victim to {target!r}; "
                f"valid targets: {self.lower_tiers(from_tier)}"
            )
        if not self.admission_policy.admit(meta, target):
            self.dropped_tokens += len(tokens)
            return
        store = self.stores[target]
        stored, displaced = store.put(
            tokens, hits, now, pinned=self.offload_policy.pin(meta, target)
        )
        if stored is not None:
            # The copy occupies the engine but nobody waits on a demotion.
            self._engine_busy(store.spec.transfer.delay_s(len(tokens)), now)
            self.demoted_tokens += len(tokens)
            self.demotion_bytes += store.spec.transfer.bytes_for(len(tokens))
        else:
            self.dropped_tokens += len(tokens)
        # Cascade this tier's victims further down (or drop at the bottom).
        for victim in displaced:
            self.demote(
                victim.tokens, victim.hits, victim.last_access, now, from_tier=target
            )

    # ------------------------------------------------------------------
    # promotion (cold prefix hits)
    # ------------------------------------------------------------------
    def lookup(
        self, prompt_tokens: Tuple[int, ...], hbm_matched: int
    ) -> Optional[Tuple[str, int, TierSegment]]:
        """Best cold-tier extension of an HBM prefix match, top tier first.

        Returns ``(tier, matched_tokens, segment)`` with ``matched_tokens >
        hbm_matched``, or ``None``.  Non-mutating: callers only
        :meth:`promote` after the request is actually admitted.
        """
        for name in self.order:
            matched, segment = self.stores[name].match(prompt_tokens)
            if segment is not None and matched > hbm_matched:
                return name, matched, segment
        return None

    def promote(
        self, found: Tuple[str, int, TierSegment], hbm_matched: int, now: float
    ) -> Tuple[int, float]:
        """Move a matched segment up to HBM; returns ``(tokens, stall_s)``.

        Only the tokens *beyond* the HBM match cross the boundary (the rest
        is already resident).  The caller re-inserts the prompt into the
        radix cache, which is where the promoted tokens land.  The stall is
        synchronous: engine queueing + latency + bytes/bandwidth.
        """
        tier, matched, segment = found
        store = self.stores[tier]
        promoted = matched - hbm_matched
        if promoted <= 0:
            return 0, 0.0
        store.take(segment)
        start = max(now, self.engine_free_at)
        finish = start + store.spec.transfer.delay_s(promoted)
        self.engine_free_at = finish
        stall = finish - now
        self.transfer_stall_s += stall
        self.promoted_tokens += promoted
        self.promotion_bytes += store.spec.transfer.bytes_for(promoted)
        self.tier_hit_tokens[tier] += promoted
        return promoted, stall

    # ------------------------------------------------------------------
    # crash composition
    # ------------------------------------------------------------------
    def export_tier(self, name: str):
        """Snapshot one tier's segments (e.g. disk surviving a crash)."""
        store = self.stores.get(name)
        return store.export() if store is not None else []

    def restore_tier(self, name: str, snapshot, now: float) -> None:
        """Re-seed a tier from a snapshot, bypassing the admission policy
        (the segments were admitted before the crash)."""
        store = self.stores.get(name)
        if store is None:
            return
        for tokens, hits, last_access, pinned in snapshot:
            store.put(tokens, hits, now, pinned=pinned)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        for store in self.stores.values():
            store.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        tiers = {name: self.stores[name].used_tokens for name in self.order}
        return f"<TieredKVStore {tiers}>"
