"""Frozen, picklable configuration for the tiered KV memory model.

``MemoryConfig`` travels inside :class:`repro.experiments.ClusterConfig`
through sweep workers, so it carries only names and scalars: the offload /
admission *policy names* are resolved against the registries wherever the
replica is actually built (exactly like pushing/constraint/selection
policies and fault kinds).

The default config is **legacy-equivalent by construction**: ``page_size=1``
and ``hbm_fraction=1.0`` leave HBM accounting token-granular and unrounded,
no offload tier has capacity, and push transfer costs are disabled -- every
event in a run is bit-identical to a build without this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .paging import round_to_pages
from .policies import make_admission_policy, make_offload_policy
from .tiers import TieredKVStore, TierSpec, TransferModel

__all__ = ["MemoryConfig", "DEFAULT_MEMORY_CONFIG"]


@dataclass(frozen=True)
class MemoryConfig:
    """How one replica's KV memory is paged, tiered and moved.

    Parameters
    ----------
    page_size:
        Token slots per KV page; HBM capacity is rounded *down* to a page
        multiple (sglang's ``max_total_num_tokens // page_size * page_size``)
        and lower-tier segments occupy whole pages.  ``1`` = legacy
        token-granular accounting.
    hbm_fraction:
        Fraction of the profile's KV capacity actually given to the HBM
        radix cache (sglang's ``mem-fraction-static`` knob); the Fig. 12
        sweep shrinks this to force eviction traffic.
    host_capacity_tokens / disk_capacity_tokens:
        Offload tier sizes in token slots; ``0`` disables a tier.
    offload / admission:
        Registered policy names (resolved lazily, including inside sweep
        worker processes); ``*_args`` are keyword arguments passed to the
        factory, as a tuple of ``(name, value)`` pairs so the config stays
        hashable and picklable.
    host_* / disk_*:
        Transfer cost of crossing into that tier, charged per crossing as
        ``latency + bytes / bandwidth`` (defaults: PCIe-4-ish host link,
        NVMe-ish disk).
    push_latency_s / push_bandwidth_bytes_per_s:
        Transfer cost model for *pushed prefixes* on the dispatch path
        (Fig. 6's BP vs SP-O/SP-P): a blind push ships the whole prompt's
        KV, a selective push only the unmatched suffix.  A bandwidth of
        ``0`` disables push costs (legacy behaviour).
    """

    page_size: int = 1
    hbm_fraction: float = 1.0
    host_capacity_tokens: int = 0
    disk_capacity_tokens: int = 0
    offload: str = "never-offload"
    admission: str = "admit-all"
    offload_args: Tuple[Tuple[str, object], ...] = ()
    admission_args: Tuple[Tuple[str, object], ...] = ()
    host_latency_s: float = 100e-6
    host_bandwidth_bytes_per_s: float = 24e9
    disk_latency_s: float = 2e-3
    disk_bandwidth_bytes_per_s: float = 3e9
    push_latency_s: float = 0.0
    push_bandwidth_bytes_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise ValueError("page_size must be at least 1")
        if not 0.0 < self.hbm_fraction <= 1.0:
            raise ValueError("hbm_fraction must be in (0, 1]")
        if self.host_capacity_tokens < 0 or self.disk_capacity_tokens < 0:
            raise ValueError("tier capacities must be non-negative")
        if min(self.host_latency_s, self.disk_latency_s, self.push_latency_s) < 0:
            raise ValueError("transfer latencies must be non-negative")
        if self.host_bandwidth_bytes_per_s <= 0 or self.disk_bandwidth_bytes_per_s <= 0:
            raise ValueError("tier bandwidths must be positive")
        if self.push_bandwidth_bytes_per_s < 0:
            raise ValueError("push bandwidth must be non-negative")
        if not self.offload or not self.admission:
            raise ValueError("offload/admission policy names must be non-empty")

    # ------------------------------------------------------------------
    @property
    def tiering_enabled(self) -> bool:
        """At least one offload tier exists."""
        return self.host_capacity_tokens > 0 or self.disk_capacity_tokens > 0

    @property
    def push_enabled(self) -> bool:
        """Pushed prefixes pay a modelled transfer cost."""
        return self.push_bandwidth_bytes_per_s > 0

    @property
    def telemetry_enabled(self) -> bool:
        """Anything here differs from the flat legacy model, so
        ``MemoryMetrics`` should appear in run payloads."""
        return (
            self.tiering_enabled
            or self.push_enabled
            or self.page_size > 1
            or self.hbm_fraction < 1.0
        )

    # ------------------------------------------------------------------
    def hbm_capacity_tokens(self, profile_capacity_tokens: int) -> int:
        """Usable HBM token budget: fraction applied, then page-rounded."""
        return round_to_pages(
            int(profile_capacity_tokens * self.hbm_fraction), self.page_size
        )

    def tier_specs(self, bytes_per_token: int) -> Tuple[TierSpec, ...]:
        specs = []
        if self.host_capacity_tokens > 0:
            specs.append(
                TierSpec(
                    name="host",
                    capacity_tokens=self.host_capacity_tokens,
                    transfer=TransferModel(
                        latency_s=self.host_latency_s,
                        bandwidth_bytes_per_s=self.host_bandwidth_bytes_per_s,
                        bytes_per_token=bytes_per_token,
                    ),
                )
            )
        if self.disk_capacity_tokens > 0:
            specs.append(
                TierSpec(
                    name="disk",
                    capacity_tokens=self.disk_capacity_tokens,
                    transfer=TransferModel(
                        latency_s=self.disk_latency_s,
                        bandwidth_bytes_per_s=self.disk_bandwidth_bytes_per_s,
                        bytes_per_token=bytes_per_token,
                    ),
                )
            )
        return tuple(specs)

    def push_transfer(self, bytes_per_token: int) -> Optional[TransferModel]:
        """Transfer model for pushed prefixes, or ``None`` when disabled."""
        if not self.push_enabled:
            return None
        return TransferModel(
            latency_s=self.push_latency_s,
            bandwidth_bytes_per_s=self.push_bandwidth_bytes_per_s,
            bytes_per_token=bytes_per_token,
        )

    def build_store(self, bytes_per_token: int) -> Optional[TieredKVStore]:
        """Build this replica's tiered store (``None`` when no tier has
        capacity -- the manager then runs the untouched legacy path)."""
        if not self.tiering_enabled:
            return None
        return TieredKVStore(
            self.tier_specs(bytes_per_token),
            make_offload_policy(self.offload, **dict(self.offload_args)),
            make_admission_policy(self.admission, **dict(self.admission_args)),
            page_size=self.page_size,
        )


#: The legacy-equivalent default shared by every code path that takes an
#: optional ``memory=`` argument.
DEFAULT_MEMORY_CONFIG = MemoryConfig()
