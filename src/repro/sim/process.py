"""Generator-driven simulation processes.

A process wraps a Python generator.  The generator yields :class:`Event`
objects; every time one of those events is processed the generator is
resumed with the event's value (or the event's exception is thrown into
it).  A process is itself an event, so processes can wait on each other::

    def worker(env):
        yield env.timeout(5)
        return "done"

    def parent(env):
        result = yield env.process(worker(env))
        assert result == "done"
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from .events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Process", "Interrupt", "InvalidYield"]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class InvalidYield(RuntimeError):
    """Raised when a process yields something that is not an Event."""


class _Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self)


class Process(Event):
    """An event that represents the execution of a generator function."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when running
        #: its first step or after termination).
        self._target: Optional[Event] = None
        _Initialize(env, self)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        Interrupting a dead process is an error; interrupting a process that
        is waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a terminated process")
        if self._target is self:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=0)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        # Detach from the previous target: if we were interrupted while
        # waiting, the old event may still fire later and must not resume us
        # twice.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                # The event failed; re-raise inside the generator so it can
                # handle (or not handle) the failure.
                event.defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env.schedule(self)
            self.env._active_process = None
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.defused = False
            self.env.schedule(self)
            self.env._active_process = None
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise InvalidYield(
                f"process yielded {next_event!r}; processes may only yield Event objects"
            )
        if next_event.callbacks is None:
            # Event already processed -- resume immediately on the next step.
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            immediate.callbacks.append(self._resume)
            self.env.schedule(immediate)
            self._target = immediate
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) {'alive' if self.is_alive else 'dead'}>"
