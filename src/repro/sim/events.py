"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic "events + generator processes" design used by
SimPy: every point of synchronisation is an :class:`Event`.  A process
(driven by :class:`repro.sim.process.Process`) yields events and is resumed
when the event it waits on is *processed* by the environment.

Only the features the SkyWalker simulation needs are implemented, but they
are implemented fully (callbacks, values, failure propagation, condition
events) so that higher layers never have to work around the kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Environment

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
]


class _PendingType:
    """Sentinel for "this event has no value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<PENDING>"


#: Sentinel used as the value of untriggered events.
PENDING = _PendingType()


class Event:
    """A single occurrence that processes can wait for.

    An event moves through three states:

    * *pending* -- created but not yet triggered,
    * *triggered* -- a value (or exception) has been set and the event is
      scheduled in the environment's queue,
    * *processed* -- the environment has popped it and run its callbacks.

    The whole event hierarchy is ``__slots__``-based: tens of thousands of
    events are created per simulated second, and slot storage measurably
    cuts both per-event allocation and attribute-access cost.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: When an exception propagates to a process that never handles it,
        #: ``defused`` suppresses re-raising at the environment level.
        self.defused = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been assigned."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (or the exception if it failed)."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {status} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Timeout delay={self.delay}>"


class ConditionEvent(Event):
    """Base class for events composed of other events (all-of / any-of)."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._count = 0
        if not self.events:
            # An empty condition is immediately true.
            self.succeed({})
            return
        for event in self.events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
            if event.callbacks is None:
                # Already processed: account for it synchronously.
                self._check(event)
            else:
                event.callbacks.append(self._check)

    # Subclasses override to define when the condition is satisfied.
    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _collect_values(self) -> dict:
        # Only events that have actually been *processed* contribute a value;
        # a pending Timeout already carries its value but has not happened yet.
        return {
            event: event._value
            for event in self.events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count, len(self.events)):
            self.succeed(self._collect_values())


class AllOf(ConditionEvent):
    """Triggered when *all* component events have triggered successfully."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(ConditionEvent):
    """Triggered when *any* component event has triggered successfully."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1
