"""A calendar-queue timeline for the simulation engine.

This is the bucketed event scheduler from R. Brown's classic calendar-queue
paper (CACM 1988), adapted for the engine's ``(time, priority, eid, event)``
entries.  Amortized O(1) enqueue/dequeue replaces the global binary heap's
O(log n), which is what lets a full-day, million-request diurnal trace run
at a flat per-event cost instead of degrading with the pending-event count.

Design notes (the parts that make the queue *exactly* equivalent to a heap):

* **Total order.**  Entries are tuples ``(time, priority, eid, event)`` and
  ``eid`` is a strictly increasing tie-breaker, so no two entries compare
  equal.  The pop order of a heap over such entries is therefore a unique,
  deterministic sequence — and this queue reproduces it bit-for-bit, which
  the differential harness in ``tests/sim/test_engine_equivalence.py``
  enforces against the private heap reference.

* **One mapping, used everywhere.**  An entry's virtual bucket is
  ``vb = int((t - origin) * inv_width)``.  Because every time in this
  project is ``>= origin`` (delays may not be negative) the truncation in
  ``int()`` equals ``floor()``, and because IEEE subtraction/multiplication
  are weakly monotone the mapping itself is weakly monotone in ``t``.  The
  same expression decides both where a push lands *and* which entries an
  activation claims, so floating-point rounding can never disagree with
  itself and pop an entry a "year" early or late.

* **Lazy buckets, one active heap.**  Future pushes are plain
  ``list.append`` — O(1), no comparisons.  Only the bucket currently being
  drained is partitioned into a small binary heap (the *active* heap).
  A push *behind* the active virtual bucket demotes the active heap back
  into its bucket and re-activates at the earlier position, preserving
  order even after ``peek_time()`` advanced the scan cursor.

* **Power-of-two geometry.**  Bucket counts are powers of two (index is a
  bitmask, not a modulo) and bucket widths are rounded to powers of two so
  resizes rescale times exactly.

* **Infinity.**  ``float("inf")`` entries cannot be mapped to a bucket
  (``int(inf)`` raises ``OverflowError`` — that exception *is* the branch);
  they live in a separate overflow heap consulted only when every finite
  entry has drained.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, List, Tuple

__all__ = ["CalendarQueue"]

#: A scheduled entry: ``(time, priority, eid, payload)``.
Entry = Tuple[float, int, int, Any]


class CalendarQueue:
    """Bucketed priority queue with amortized O(1) push/pop.

    Pops entries in exactly the order ``heapq`` would — the strictly
    increasing ``eid`` tie-breaker makes that order unique.

    Parameters
    ----------
    origin:
        Lower bound for all entry times (the simulation's initial clock).
        Entry times below ``origin`` are rejected.
    """

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_mask",
        "_width",
        "_inv_width",
        "_count",
        "_active",
        "_active_vb",
        "_origin",
        "_inf",
        "_resize_up",
        "_resize_down",
        "_resizes",
    )

    #: Smallest (and initial) bucket-array size.
    MIN_BUCKETS = 32
    #: Bucket-array size ceiling: bounds both resize cost and the memory
    #: spent on empty lists at multi-million pending-event depths.
    MAX_BUCKETS = 1 << 18
    #: Geometric growth factor between resizes.
    GROWTH = 4
    #: Width is tuned so an average virtual bucket holds about this many
    #: entries when the array is at its triggering occupancy.
    TARGET_OCCUPANCY = 3.0

    def __init__(self, origin: float = 0.0) -> None:
        self._origin = float(origin)
        self._nbuckets = self.MIN_BUCKETS
        self._mask = self.MIN_BUCKETS - 1
        self._buckets: List[List[Entry]] = [[] for _ in range(self.MIN_BUCKETS)]
        self._width = 1.0
        self._inv_width = 1.0
        self._count = 0
        self._active: List[Entry] = []
        self._active_vb = 0
        self._inf: List[Entry] = []
        self._resize_up: float = 2 * self.MIN_BUCKETS
        self._resize_down = -1
        self._resizes = 0

    # ------------------------------------------------------------------
    # introspection (used by the resize edge-case tests and the docs)
    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Current size of the bucket array (always a power of two)."""
        return self._nbuckets

    @property
    def bucket_width(self) -> float:
        """Current bucket width in seconds (always a power of two)."""
        return self._width

    @property
    def resizes(self) -> int:
        """Number of resize operations performed so far."""
        return self._resizes

    def __len__(self) -> int:
        return self._count + len(self._inf)

    def __bool__(self) -> bool:
        return bool(self._count or self._inf)

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def push(self, entry: Entry) -> None:
        """Insert ``entry``; O(1) amortized."""
        try:
            vb = int((entry[0] - self._origin) * self._inv_width)
        except OverflowError:  # entry[0] == float("inf")
            heappush(self._inf, entry)
            return
        if vb < 0:
            raise ValueError(
                f"entry time {entry[0]!r} precedes the queue origin "
                f"{self._origin!r}"
            )
        avb = self._active_vb
        if vb > avb:
            self._buckets[vb & self._mask].append(entry)
        elif vb == avb:
            heappush(self._active, entry)
        else:
            # Push behind the activation point: demote the active heap back
            # into its bucket, restart the scan at the earlier vbucket.
            active = self._active
            if active:
                self._buckets[avb & self._mask].extend(active)
                del active[:]
            self._active_vb = vb
            self._activate(vb)
            heappush(active, entry)
        count = self._count + 1
        self._count = count
        if count > self._resize_up:
            self._resize(self._nbuckets * self.GROWTH)

    def pop(self) -> Entry:
        """Remove and return the minimum entry; O(1) amortized.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        active = self._active
        if active:
            count = self._count - 1
            self._count = count
            if count < self._resize_down:
                entry = heappop(active)
                self._resize(max(self.MIN_BUCKETS, self._nbuckets // self.GROWTH))
                return entry
            return heappop(active)
        if not self._count:
            if self._inf:
                return heappop(self._inf)
            raise IndexError("pop from empty calendar queue")
        self._advance()
        self._count -= 1
        return heappop(active)

    def peek_time(self) -> float:
        """Time of the minimum entry, or ``inf`` if the queue is empty.

        May advance the internal scan cursor, but never changes the order
        in which entries pop.
        """
        active = self._active
        if active:
            return active[0][0]
        if self._count:
            self._advance()
            return self._active[0][0]
        if self._inf:
            return self._inf[0][0]
        return float("inf")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _activate(self, vb: int) -> None:
        """Claim the entries of virtual bucket ``vb`` into the active heap."""
        bucket = self._buckets[vb & self._mask]
        if not bucket:
            return
        inv = self._inv_width
        origin = self._origin
        active = self._active
        keep = []
        for entry in bucket:
            # Same mapping as push(): a bucket may hold entries from several
            # "years" (vb values that alias modulo the array size); claim
            # only the current year's.
            if int((entry[0] - origin) * inv) == vb:
                active.append(entry)
            else:
                keep.append(entry)
        if active:
            bucket[:] = keep
            if len(active) > 1:
                heapify(active)

    def _advance(self) -> None:
        """Move the activation point to the next non-empty virtual bucket.

        Precondition: the active heap is empty and at least one finite
        entry remains.  Postcondition: the active heap holds the minimum
        entry's virtual bucket.
        """
        bs = self._buckets
        mask = self._mask
        vb = self._active_vb
        nb = self._nbuckets
        scanned = 0
        while True:
            vb += 1
            scanned += 1
            if bs[vb & mask]:
                self._active_vb = vb
                self._activate(vb)
                if self._active:
                    return
            if scanned >= nb:
                break
        # A whole "year" scanned without a hit: the next entry is more than
        # nbuckets * width ahead.  Jump straight to the global minimum.
        best = None
        for bucket in bs:
            for entry in bucket:
                if best is None or entry < best:
                    best = entry
        vb = int((best[0] - self._origin) * self._inv_width)
        self._active_vb = vb
        self._activate(vb)

    def _resize(self, nbuckets: int) -> None:
        """Rebuild the bucket array with ``nbuckets`` slots and a re-tuned width."""
        items = list(self._active)
        for bucket in self._buckets:
            items.extend(bucket)
        if items:
            lo = min(items)[0]
            hi = max(items)[0]
            span = hi - lo
            if span > 0:
                est = span / len(items) * self.TARGET_OCCUPANCY
                # Round the width to a power of two so rescaling is exact.
                self._width = 2.0 ** round(math.log2(est))
                self._inv_width = 1.0 / self._width
        if nbuckets >= self.MAX_BUCKETS:
            nbuckets = self.MAX_BUCKETS
            # At the ceiling a grow-resize can never help again; disable the
            # trigger or every subsequent push would pay an O(n) rebuild.
            self._resize_up = float("inf")
        else:
            self._resize_up = 2 * nbuckets
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        self._buckets = bs = [[] for _ in range(nbuckets)]
        self._resize_down = nbuckets // 4 if nbuckets > self.MIN_BUCKETS else -1
        self._resizes += 1
        del self._active[:]
        inv = self._inv_width
        origin = self._origin
        min_vb = None
        for entry in items:
            vb = int((entry[0] - origin) * inv)
            bs[vb & mask].append(entry)
            if min_vb is None or vb < min_vb:
                min_vb = vb
        if min_vb is not None:
            self._active_vb = min_vb
            self._activate(min_vb)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<CalendarQueue len={len(self)} buckets={self._nbuckets} "
            f"width={self._width}>"
        )
