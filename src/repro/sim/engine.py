"""The discrete-event simulation environment.

:class:`Environment` owns the simulation clock and the event timeline.  Times
are floats in **seconds** throughout this project; the unit matters because
the replica model profiles and network latency matrices are calibrated in
seconds as well.

The timeline is pluggable.  The default is the :class:`~repro.sim.calendar.
CalendarQueue` — amortized O(1) enqueue/dequeue, which is what keeps a
million-event day tractable.  The original ``heapq`` timeline is retained as
a private reference implementation (``Environment(timeline="heap")``): the
differential harness in ``tests/sim/test_engine_equivalence.py`` replays
randomized schedules through both and asserts identical pop order and final
state.  Both timelines order events by ``(time, priority, eid)`` where
``eid`` is a strictly increasing insertion counter, so the order is a unique
deterministic sequence — ties at the same timestamp pop in insertion order.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from .calendar import CalendarQueue
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule"]

#: Priority for events scheduled "urgently" (e.g. interrupts) so they run
#: before normal events scheduled at the same timestamp.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class _HeapTimeline:
    """The original global-heap timeline, kept as the reference oracle.

    O(log n) push/pop via ``heapq``.  Semantically authoritative: the
    calendar timeline must pop entries in exactly this order (the harness
    in ``tests/sim/test_engine_equivalence.py`` enforces it).
    """

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, int, Event]] = []

    def push(self, entry: Tuple[float, int, int, Event]) -> None:
        heapq.heappush(self._queue, entry)

    def pop(self) -> Tuple[float, int, int, Event]:
        return heapq.heappop(self._queue)

    def peek_time(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


#: Registry of timeline implementations selectable by name.
_TIMELINES = {
    "calendar": CalendarQueue,
    "heap": _HeapTimeline,
}


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.
    timeline:
        Scheduler implementation: ``"calendar"`` (default, amortized O(1))
        or ``"heap"`` (the reference ``heapq`` timeline).  Both produce
        bit-identical simulations; ``"heap"`` exists for the differential
        equivalence harness and as a fallback oracle.
    """

    def __init__(self, initial_time: float = 0.0, timeline: str = "calendar") -> None:
        self._now = float(initial_time)
        try:
            factory = _TIMELINES[timeline]
        except KeyError:
            raise ValueError(
                f"unknown timeline {timeline!r}; expected one of "
                f"{sorted(_TIMELINES)}"
            ) from None
        if factory is CalendarQueue:
            self._timeline = CalendarQueue(origin=self._now)
        else:
            self._timeline = factory()
        self._timeline_name = timeline
        self._eid = 0
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def timeline_name(self) -> str:
        """Name of the timeline implementation backing this environment."""
        return self._timeline_name

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert ``event`` into the timeline ``delay`` seconds from now.

        Raises
        ------
        ValueError
            If ``delay`` is negative: the simulation clock may never run
            backwards, and silently clamping would hide workload bugs.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r} would run the clock backwards")
        self._eid += 1
        self._timeline.push((self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._timeline.peek_time()

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        EmptySchedule
            If the timeline is empty.
        """
        try:
            when, _priority, _eid, event = self._timeline.pop()
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # An event may legitimately end up in the queue twice (e.g. a
            # process interrupted while its target also fires).  The second
            # pop is a no-op.
            return
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody handled the failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the timeline drains), a number
        (run until the clock reaches that time) or an :class:`Event` (run
        until the event is processed, returning its value).
        """
        if until is None:
            stop_event: Optional[Event] = None
            stop_time = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            stop_time = float("inf")
            if stop_event.processed:
                return stop_event.value
        else:
            stop_event = None
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        timeline = self._timeline
        while timeline:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if timeline.peek_time() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise RuntimeError(
                "run() finished but the awaited event never triggered"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Environment now={self._now} queued={len(self._timeline)} "
            f"timeline={self._timeline_name}>"
        )
