"""The discrete-event simulation environment.

:class:`Environment` owns the simulation clock and the event queue.  Times
are floats in **seconds** throughout this project; the unit matters because
the replica model profiles and network latency matrices are calibrated in
seconds as well.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule"]

#: Priority for events scheduled "urgently" (e.g. interrupts) so they run
#: before normal events scheduled at the same timestamp.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert ``event`` into the queue ``delay`` seconds from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        EmptySchedule
            If the queue is empty.
        """
        try:
            when, _priority, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # An event may legitimately end up in the queue twice (e.g. a
            # process interrupted while its target also fires).  The second
            # pop is a no-op.
            return
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody handled the failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until the clock reaches that time) or an :class:`Event` (run
        until the event is processed, returning its value).
        """
        if until is None:
            stop_event: Optional[Event] = None
            stop_time = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            stop_time = float("inf")
            if stop_event.processed:
                return stop_event.value
        else:
            stop_event = None
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise RuntimeError(
                "run() finished but the awaited event never triggered"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Environment now={self._now} queued={len(self._queue)}>"
