"""Discrete-event simulation kernel used by every other subsystem.

This is a self-contained, SimPy-style kernel: generator processes yield
:class:`Event` objects and an :class:`Environment` advances a virtual clock
(in seconds).  See ``tests/sim`` for focused examples of the semantics.
"""

from .engine import EmptySchedule, Environment
from .events import AllOf, AnyOf, Event, PENDING, Timeout
from .process import Interrupt, InvalidYield, Process
from .resources import PriorityStore, Resource, Store

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "PENDING",
    "Process",
    "Interrupt",
    "InvalidYield",
    "Store",
    "PriorityStore",
    "Resource",
]
