"""Shared-resource primitives built on top of the event kernel.

The SkyWalker simulation mostly needs message queues (:class:`Store`) --
load balancers and replicas communicate by putting request/response objects
into each other's stores -- plus a small counted :class:`Resource` used by a
few tests and examples.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, Tuple, TYPE_CHECKING

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Store", "PriorityStore", "Resource"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; its value is the item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """An unbounded (or bounded) FIFO queue of arbitrary items.

    ``put`` events succeed immediately unless the store is at ``capacity``;
    ``get`` events succeed as soon as an item is available, in FIFO order.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Request to add ``item``; returns an event."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request to remove and return the oldest item; returns an event."""
        return StoreGet(self)

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending put/get request from this store.

        Needed when the process waiting on the event was interrupted or
        killed: an abandoned ``get()`` left in the queue would otherwise
        consume the next item put into the store and hand it to an event
        nobody listens to any more (silently losing the item).  Returns
        ``True`` if the event was found and removed; events that do not
        belong to this store (or already triggered) are a ``False`` no-op,
        so callers may pass whatever their process was last waiting on.
        """
        if not isinstance(event, (StorePut, StoreGet)):
            return False
        for queue in (self._get_queue, self._put_queue):
            try:
                queue.remove(event)
                return True
            except ValueError:
                continue
        return False

    # ------------------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _trigger(self) -> None:
        """Match queued puts and gets until no more progress can be made."""
        progress = True
        while progress:
            progress = False
            while self._put_queue:
                head = self._put_queue[0]
                if head.triggered:
                    self._put_queue.popleft()
                    continue
                if self._do_put(head):
                    self._put_queue.popleft()
                    progress = True
                else:
                    break
            while self._get_queue:
                head = self._get_queue[0]
                if head.triggered:
                    self._get_queue.popleft()
                    continue
                if self._do_get(head):
                    self._get_queue.popleft()
                    progress = True
                else:
                    break


class PriorityStore(Store):
    """A store that yields the smallest item first.

    Items must be orderable; a common pattern is ``(priority, seq, payload)``
    tuples.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, event: StorePut) -> bool:
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._heap:
            event.succeed(heapq.heappop(self._heap))
            return True
        return False


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with ``capacity`` concurrent users."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self._queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        """Queue a request for one unit of the resource."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Release a previously granted request."""
        if request in self.users:
            self.users.remove(request)
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            request = self._queue.popleft()
            if request.triggered:
                continue
            self.users.append(request)
            request.succeed()
