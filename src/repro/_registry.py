"""Shared name -> factory registry behind the policy plug-in points.

Pushing policies, selection policies and routing constraints all follow the
same pattern: built-ins and third parties register a factory under a name
with an ``@register_*`` decorator, and configs carry only the (picklable)
name, resolved against the registry wherever the system is built --
including inside sweep worker processes.  This module is the one
implementation of that pattern; the public faces live in
:mod:`repro.core.pushing`, :mod:`repro.core.selection` and
:mod:`repro.core.policies`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, TypeVar

__all__ = ["NameRegistry"]

F = TypeVar("F", bound=Callable)


class NameRegistry:
    """Case-insensitive name -> factory mapping with decorator registration.

    Parameters
    ----------
    kind:
        Singular human name used in error messages ("pushing policy", ...).
    plural:
        Plural used when listing registered names in error messages.
    normalize:
        Canonical form of names (``str.upper`` for the pushing policies'
        historical ``"SP-P"`` style, ``str.lower`` elsewhere).
    """

    def __init__(
        self,
        kind: str,
        *,
        plural: str,
        normalize: Callable[[str], str] = str.lower,
    ) -> None:
        self.kind = kind
        self.plural = plural
        self.normalize = normalize
        self._factories: Dict[str, Callable] = {}

    def register(self, name: str, *, replace_existing: bool = False) -> Callable[[F], F]:
        """Decorator registering a factory (class or callable) under ``name``."""
        key = self.normalize(name)

        def decorator(factory: F) -> F:
            if key in self._factories and not replace_existing:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._factories[key] = factory
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        self._factories.pop(self.normalize(name), None)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def make(self, name: str, *args, **kwargs):
        """Instantiate the factory registered under ``name``."""
        try:
            factory = self._factories[self.normalize(name)]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered {self.plural}: {self.names()}"
            ) from None
        return factory(*args, **kwargs)
