#!/usr/bin/env python3
"""Execute every ``python`` code block in the documentation.

The acceptance bar for README.md and docs/*.md is that **every** fenced
``python`` snippet runs: docs that rot are worse than no docs.  This
script extracts the blocks and ``exec``s them, file by file.

Rules:

* Only blocks fenced as ```` ```python ```` are executed; ``bash`` /
  ``text`` / untagged blocks are skipped.
* Blocks within one file share a namespace and run top to bottom, so a
  walkthrough can define something in one snippet and use it in the next.
* Each file gets a fresh namespace (and a fresh registry state matters to
  nobody: doc snippets register under ``docs-``/``readme-`` names that
  only need to be unique within their own file).

Usage::

    python scripts/run_doc_snippets.py                 # README.md + docs/*.md
    python scripts/run_doc_snippets.py README.md       # explicit file list
"""

from __future__ import annotations

import re
import sys
import time
import types
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# Make the in-tree package importable without installation.
sys.path.insert(0, str(REPO_ROOT / "src"))

_FENCE_RE = re.compile(
    r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def extract_snippets(path: Path) -> List[Tuple[int, str]]:
    """(1-based start line, source) for every ```python block in ``path``."""
    text = path.read_text()
    snippets = []
    for match in _FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start(1)) + 1
        snippets.append((line, match.group(1)))
    return snippets


def run_file(path: Path) -> int:
    """Run every snippet of one file in a shared namespace; return #failures."""
    snippets = extract_snippets(path)
    if not snippets:
        print(f"  {path}: no python snippets")
        return 0
    # A real registered module, not a bare dict: dataclass creation and
    # pickling (the sweep executor ships specs to worker processes) both
    # resolve classes through sys.modules[cls.__module__].
    module_name = "docsnippets_" + re.sub(r"\W", "_", path.stem.lower())
    module = types.ModuleType(module_name)
    module.__file__ = str(path)
    sys.modules[module_name] = module
    namespace = module.__dict__
    failures = 0
    for index, (line, source) in enumerate(snippets, start=1):
        label = f"{path}:{line} (snippet {index}/{len(snippets)})"
        start = time.perf_counter()
        try:
            code = compile(source, f"{path}#snippet{index}", "exec")
            exec(code, namespace)
        except Exception as exc:  # noqa: BLE001 - report and keep going
            failures += 1
            print(f"  FAIL {label}: {type(exc).__name__}: {exc}")
        else:
            print(f"  ok   {label}  [{time.perf_counter() - start:.1f}s]")
    return failures


def main(argv: List[str]) -> int:
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    missing = [p for p in paths if not p.is_file()]
    if missing:
        print(f"missing file(s): {', '.join(map(str, missing))}")
        return 2
    total_failures = 0
    for path in paths:
        print(f"== {path.relative_to(REPO_ROOT) if path.is_absolute() else path} ==")
        total_failures += run_file(path)
    if total_failures:
        print(f"\n{total_failures} snippet(s) failed")
        return 1
    print("\nall documentation snippets ran cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
