"""Setuptools shim for legacy editable installs; all metadata lives in
pyproject.toml (src layout, so `pip install -e .` works without PYTHONPATH)."""
from setuptools import setup

setup()
