"""Fig. 3b -- provisioning cost comparison.

Compares daily cost of (i) perfect on-demand autoscaling, (ii) region-local
reserved provisioning (per-region peaks) and (iii) aggregated reserved
provisioning (global peak).  The paper reports a 40.5% reduction from
aggregation and that even ideal on-demand autoscaling costs ~2.2x the
aggregated reserved pool.
"""

from __future__ import annotations

from repro.analysis import CostModel, analyze_aggregation
from repro.cluster import G6_XLARGE
from repro.network import wide_topology
from repro.workloads import DiurnalPattern, generate_daily_trace


def _five_region_patterns():
    topology = wide_topology()
    rates = {
        "us-east-1": (400, 3900),
        "us-east-2": (120, 1100),
        "us-west": (250, 2400),
        "eu-west": (220, 2200),
        "eu-central": (180, 1800),
    }
    return {
        name: DiurnalPattern(topology.info(name).utc_offset_hours, base, peak)
        for name, (base, peak) in rates.items()
    }


def test_fig03b_provisioning_cost(benchmark, record_result):
    def run():
        trace = generate_daily_trace(_five_region_patterns(), seed=2)
        model = CostModel(requests_per_replica_hour=400, instance=G6_XLARGE)
        return trace, model.evaluate(trace)

    trace, cost = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Fig. 3b: estimated daily cost (USD) by provisioning strategy",
        "",
        f"  on-demand autoscaling : ${cost.on_demand_autoscaling:10.2f}",
        f"  region-local reserved : ${cost.region_local_reserved:10.2f}  ({cost.region_local_replicas} replicas)",
        f"  aggregated reserved   : ${cost.aggregated_reserved:10.2f}  ({cost.aggregated_replicas} replicas)",
        "",
        f"  aggregation savings   : {cost.aggregation_savings_fraction:.1%}   (paper: 40.5%)",
        f"  on-demand multiplier  : {cost.on_demand_multiplier:.2f}x  (paper: 2.2x of aggregated)",
    ]
    record_result("fig03b_cost", "\n".join(lines))

    assert cost.aggregated_reserved < cost.region_local_reserved
    assert 0.2 < cost.aggregation_savings_fraction < 0.6
    assert cost.on_demand_multiplier > 1.3
