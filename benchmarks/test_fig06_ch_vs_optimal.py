"""Fig. 6 -- KV-cache hit rate of consistent hashing vs an optimal global view.

The paper reports gaps of 16.49% (cross-user sharing), 7.07% (bursty
requests) and 8.78% (heterogeneous programs).  The replay here reproduces the
direction of every gap; magnitudes depend on cache capacity and burst sizes.
"""

from __future__ import annotations

from repro.experiments import HITRATE_SCENARIOS, run_hitrate_benchmark


def test_fig06_consistent_hashing_vs_optimal(benchmark, record_result):
    comparison = benchmark.pedantic(
        lambda: run_hitrate_benchmark(seed=7), rounds=1, iterations=1
    )

    lines = ["Fig. 6: KV cache hit rate (%), consistent hashing vs optimal", ""]
    lines.append(f"  {'scenario':<24}{'consistent hashing':>20}{'optimal':>12}{'gap':>10}")
    for name in HITRATE_SCENARIOS:
        row = comparison.results[name]
        lines.append(
            f"  {name:<24}{row['consistent-hashing'] * 100:>19.1f}%{row['optimal'] * 100:>11.1f}%"
            f"{comparison.gap(name) * 100:>9.1f}%"
        )
    record_result("fig06_ch_vs_optimal", "\n".join(lines))

    gaps = {name: comparison.gap(name) for name in HITRATE_SCENARIOS}
    # The optimal router wins clearly on cross-user sharing and heterogeneous
    # programs, and never loses by more than noise anywhere.
    assert gaps["cross-user-sharing"] > 0.05
    assert gaps["heterogeneous-program"] > 0.05
    assert all(gap > -0.02 for gap in gaps.values())
