"""Ablation -- sensitivity of SP-O to its fixed outstanding-request threshold.

The paper argues that no fixed threshold works across request mixes (the
sustainable batch size on an L4 ranges from ~20 to ~50 requests).  This
ablation sweeps the SP-O threshold and contrasts it with SP-P, which needs
no threshold at all.
"""

from __future__ import annotations

from repro.experiments import run_pushing_benchmark

from conftest import bench_duration, bench_scale, bench_workers


def test_ablation_sp_o_threshold_sensitivity(benchmark, record_result):
    clients = max(8, int(30 * max(bench_scale(), 0.25)))

    def run():
        results = {}
        for threshold in (4, 16, 48):
            outcome = run_pushing_benchmark(
                policies=("SP-O",),
                replicas=4,
                clients=clients,
                duration_s=bench_duration(),
                sp_o_threshold=threshold,
                seed=9,
            )
            results[f"SP-O@{threshold}"] = outcome.runs["SP-O"]
        spp = run_pushing_benchmark(
            policies=("SP-P",),
            replicas=4,
            clients=clients,
            duration_s=bench_duration(),
            seed=9,
        )
        results["SP-P"] = spp.runs["SP-P"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation: SP-O threshold sweep vs SP-P", ""]
    lines.append(f"  {'variant':<10}{'tput tok/s':>12}{'ttft p90':>10}{'completed':>11}")
    for name, metrics in results.items():
        lines.append(
            f"  {name:<10}{metrics.throughput_tokens_per_s:>12.1f}"
            f"{metrics.ttft.p90:>10.3f}{metrics.num_completed:>11}"
        )
    spp = results["SP-P"]
    best_spo = max(
        (m for n, m in results.items() if n.startswith("SP-O")),
        key=lambda m: m.throughput_tokens_per_s,
    )
    lines.append("")
    lines.append(
        f"  SP-P reaches {spp.throughput_tokens_per_s / best_spo.throughput_tokens_per_s:.2f}x "
        "the best fixed-threshold throughput without any tuning"
    )
    record_result("ablation_spo_threshold", "\n".join(lines))

    for metrics in results.values():
        assert metrics.num_completed > 0
    # SP-P is competitive with the *best* hand-tuned threshold.
    assert spp.throughput_tokens_per_s >= 0.9 * best_spo.throughput_tokens_per_s


def test_ablation_probe_interval(benchmark, record_result):
    """Ablation -- probe interval (the paper fixes it at 100 ms)."""
    from repro.experiments import (
        ClusterConfig,
        SkyWalkerConfig,
        build_arena_workload,
        run_sweep,
    )

    def run():
        workload = build_arena_workload(scale=max(bench_scale() * 0.6, 0.08), seed=3)
        systems = [
            SkyWalkerConfig(kind="skywalker", probe_interval_s=interval,
                            hash_key=workload.hash_key, label=f"probe-{int(interval*1000)}ms")
            for interval in (0.05, 0.1, 0.4)
        ]
        sweep = run_sweep(
            systems,
            [workload],
            cluster=ClusterConfig(replicas_per_region={"us": 2, "eu": 2, "asia": 2}),
            duration_s=bench_duration(),
            seed=3,
            workers=min(bench_workers(), 3),
        )
        return {
            system.label.removeprefix("probe-"): sweep.get(workload.name, system.name)
            for system in systems
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation: availability probe interval", ""]
    lines.append(f"  {'interval':<10}{'tput tok/s':>12}{'ttft p50':>10}{'ttft p90':>10}")
    for name, metrics in results.items():
        lines.append(
            f"  {name:<10}{metrics.throughput_tokens_per_s:>12.1f}"
            f"{metrics.ttft.p50:>10.3f}{metrics.ttft.p90:>10.3f}"
        )
    record_result("ablation_probe_interval", "\n".join(lines))

    for metrics in results.values():
        assert metrics.num_completed > 0
    # A 100 ms probe interval should not be meaningfully worse than 50 ms.
    assert results["100ms"].throughput_tokens_per_s >= 0.85 * results["50ms"].throughput_tokens_per_s
