"""Fig. 10 -- SkyWalker vs region-local deployment under regionally skewed load.

The paper sweeps the total replica count (evenly split across three regions)
with 120 US clients vs 40 each in Europe/Asia, finds SkyWalker ahead of
region-local at equal replica counts, and shows a 9-replica SkyWalker
matching a 12-replica region-local deployment -- a 25% cost reduction.

In this reproduction the benefit of cross-region offloading shows up most
strongly in the overloaded region's tail latency: the US p90 TTFT explodes
for the region-local deployment once the US is oversubscribed, while
SkyWalker keeps it bounded by spilling the excess to Europe/Asia.  The
replica count needed to bring the US p90 TTFT under an SLO therefore drops
by the paper's ~25%; aggregate token throughput is at parity (see
EXPERIMENTS.md for why our simulated decode scaling makes raw throughput
less sensitive to redistribution than the real testbed).
"""

from __future__ import annotations

from repro.experiments import run_diurnal_sweep

from conftest import bench_duration, bench_seeds, bench_workers

REPLICA_COUNTS = (3, 6, 9, 12)
SLO_CANDIDATES_S = (3.0, 3.5, 4.0, 4.5, 5.0, 6.0)


def test_fig10_skywalker_vs_region_local(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_diurnal_sweep(
            replica_counts=REPLICA_COUNTS,
            scale=1.0,
            duration_s=max(bench_duration(), 120.0),
            seeds=bench_seeds(5),
            workers=bench_workers(),
        ),
        rounds=1,
        iterations=1,
    )

    lines = ["Fig. 10: SkyWalker vs region-local under regionally skewed load", ""]
    lines.append(
        f"  {'replicas':<9}{'sky tok/s':>12}{'local tok/s':>13}{'tput ratio':>12}"
        f"{'sky US p90 TTFT':>17}{'local US p90 TTFT':>19}{'offloaded':>11}"
    )
    for count in REPLICA_COUNTS:
        sky = result.skywalker[count]
        local = result.region_local[count]
        lines.append(
            f"  {count:<9}{sky.throughput_tokens_per_s:>12.1f}{local.throughput_tokens_per_s:>13.1f}"
            f"{result.speedup_at(count):>11.2f}x"
            f"{sky.extra.get('us_ttft_p90', sky.ttft.p90):>16.2f}s"
            f"{local.extra.get('us_ttft_p90', local.ttft.p90):>18.2f}s"
            f"{sky.forwarded_fraction:>10.1%}"
        )
    lines.append("")
    best_reduction = None
    for slo in SLO_CANDIDATES_S:
        sky_needed = result.replicas_meeting_slo("skywalker", slo)
        local_needed = result.replicas_meeting_slo("region-local", slo)
        reduction = result.slo_cost_reduction(slo)
        lines.append(
            f"  US p90 TTFT SLO {slo:.1f}s -> SkyWalker needs {sky_needed}, "
            f"region-local needs {local_needed}"
            + (f"  (cost reduction {reduction:.0%})" if reduction is not None else "")
        )
        if reduction is not None:
            best_reduction = max(best_reduction or 0.0, reduction)
    lines.append("")
    lines.append(f"  best SLO-equivalent cost reduction: "
                 f"{best_reduction:.0%}" if best_reduction is not None else "  (no SLO met by both)")
    lines.append("  paper: SkyWalker@9 matches region-local@12 => 25% cost reduction")
    seeds = bench_seeds(5)
    if len(seeds) > 1:
        lines.append("")
        lines.append(f"  aggregate over seeds {seeds} (mean±95% CI):")
        for count in REPLICA_COUNTS:
            for system in ("skywalker", "region-local"):
                agg = result.aggregate(system, count)
                tput = agg.stat("throughput_tokens_per_s")
                lines.append(
                    f"  {system:<14} replicas={count:<3} "
                    f"tput={tput.mean:8.1f}±{tput.ci95 or 0.0:6.1f} tok/s  "
                    f"seeds={agg.num_seeds}"
                )
    record_result("fig10_region_local", "\n".join(lines))

    # Throughput parity (or better) once the fleet is past the fully
    # saturated low end of the sweep.
    for count in REPLICA_COUNTS:
        if count >= 6:
            assert result.speedup_at(count) > 0.9
    # The overloaded region's tail latency is strictly better under
    # SkyWalker, dramatically so when the skew bites hardest.
    us_improvements = []
    for count in REPLICA_COUNTS:
        sky_p90 = result.skywalker[count].extra.get("us_ttft_p90")
        local_p90 = result.region_local[count].extra.get("us_ttft_p90")
        assert sky_p90 is not None and local_p90 is not None
        us_improvements.append(local_p90 / sky_p90)
        assert sky_p90 <= local_p90 * 1.05
    assert max(us_improvements) > 2.0
    # Matching the region-local SLO with fewer replicas => cost reduction in
    # the ballpark of the paper's 25%.
    assert best_reduction is not None and best_reduction >= 0.2
