"""Fig. 13 -- gray failure: load-aware routing vs pure prefix affinity.

A gray failure is the failure detectors' blind spot: a replica that still
answers probes but serves slowly (thermal throttling, a power cap, a noisy
neighbour).  Nothing crashes, so crash-driven failover never triggers --
the only defence is routing that *observes* load.  This benchmark throttles
one US replica on a seeded renewal process (recurring slowdowns with drawn
repair times) and compares two members of the SkyWalker family:

* ``skywalker-hybrid`` -- prefix affinity discounted by probed load; the
  inflated queue on the slow replica pushes new sessions elsewhere.
* ``prefix-affinity`` -- the same balancer with the load-balancing escape
  hatch disabled (an unreachable threshold): sessions stick to their
  prefix-cached replica no matter how slow it gets.

The artifact reports degraded-mode p90 TTFT and goodput per system, the
cross-seed mean/CI time-to-recovery, and the per-seed paired difference of
degraded p90 TTFT -- the headline "hybrid beats pure affinity under
heterogeneity" number.  Multi-seed by construction (at least 3): each seed
compiles a different renewal schedule, so the CIs span fault realisations,
not just workload noise.
"""

from __future__ import annotations

from repro.experiments import REGISTRY, default_macro_cluster, run_sweep
from repro.experiments.workloads import build_arena_workload
from repro.faults import make_fault_schedule

from conftest import bench_duration, bench_scale, bench_seeds, bench_workers

SEED = 13
HYBRID = "skywalker-hybrid"
AFFINITY = "prefix-affinity"


def throttle_schedule(duration_s: float):
    """Recurring thermal throttling of us/replica-0 on a renewal process.

    MTBF/MTTR scale with the run so the quick CI configuration still sees
    several degrade windows.  ``p-state-floor`` (0.40x) is a deep throttle:
    compute takes 2.5x longer while the replica keeps answering probes.
    """
    return make_fault_schedule(
        "gray-throttle-renewal",
        mtbf_s=duration_s / 8.0,
        mttr_s=duration_s / 4.0,
        region="us",
        index=0,
        level="p-state-floor",
    )


def fig13_seeds() -> list:
    """At least three seeds: the paired CI needs real fault diversity."""
    seeds = bench_seeds(SEED)
    if len(seeds) < 3:
        seeds = [SEED + i for i in range(3)]
    return seeds


def _opt(value, fmt="8.3f"):
    return "       -" if value is None else format(value, fmt)


def _render(sweep, workload_name, duration, seeds) -> str:
    lines = [
        "Fig. 13: gray failure -- one US replica thermal-throttles on a "
        "seeded renewal process",
        f"  (p-state-floor 0.40x compute, mtbf={duration / 8.0:.0f}s "
        f"mttr={duration / 4.0:.0f}s over a {duration:.0f}s run at 2x "
        "overload; the replica stays healthy and keeps answering probes)",
        "",
        f"  {'system':<18}{'tput tok/s':>12}{'completed':>11}"
        f"{'degraded p90 ttft (s)':>23}{'degraded tok/s':>16}{'windows':>9}",
    ]
    for system in sweep.systems(workload_name):
        metrics = sweep.get(workload_name, system)
        r = metrics.resilience
        lines.append(
            f"  {system:<18}{metrics.throughput_tokens_per_s:>12.1f}"
            f"{metrics.num_completed:>11}"
            f"{_opt(r.ttft_p90_degraded_s, '23.3f')}"
            f"{_opt(r.goodput_while_degraded_tokens_per_s, '16.1f')}"
            f"{len(r.degraded_windows):>9}"
        )
    lines.append("")
    lines.append(f"  aggregate over seeds {seeds} (mean±95% CI):")
    lines.append(sweep.report().format_table())
    diff = sweep.paired_diff(
        workload_name, AFFINITY, HYBRID, metric="resilience_ttft_p90_degraded_s"
    )
    ttr = sweep.aggregate(workload_name, HYBRID).stats["resilience_mean_ttr_s"]
    lines.append("")
    lines.append(
        f"  degraded p90 TTFT, affinity - hybrid (paired per seed): "
        f"{diff.mean:+.3f}s ± {diff.ci95:.3f} (positive = hybrid wins)"
    )
    lines.append(
        f"  hybrid time-to-recovery across seeds: "
        f"{ttr.mean:.2f}s ± {ttr.ci95:.2f}"
    )
    return "\n".join(lines)


def _run():
    duration = bench_duration()
    seeds = fig13_seeds()
    # Twice the cluster's scale on purpose: a gray failure only hurts when
    # queues form.  Under light load SP-P's availability gate steers every
    # system off the busy slow replica and the variants are near-identical;
    # under overload continuous batches stay deep, the throttled replica's
    # outstanding count balloons, and only load-discounted selection reacts.
    workload = build_arena_workload(scale=2.0 * bench_scale(), seed=SEED)
    specs = [
        REGISTRY.spec(HYBRID, hash_key=workload.hash_key),
        REGISTRY.spec(
            "skywalker",
            label=AFFINITY,
            # An unreachable threshold: the escape to the least-loaded
            # replica never fires, leaving pure prefix affinity.
            balance_abs_threshold=10**9,
            hash_key=workload.hash_key,
        ),
    ]
    return (
        run_sweep(
            specs,
            [workload],
            cluster=default_macro_cluster(bench_scale()),
            duration_s=duration,
            seeds=seeds,
            workers=bench_workers(),
            faults=throttle_schedule(duration),
        ),
        workload.name,
        duration,
        seeds,
    )


def test_fig13_gray(benchmark, record_result):
    sweep, workload_name, duration, seeds = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    record_result("fig13_gray", _render(sweep, workload_name, duration, seeds))

    rows = {system: sweep.get(workload_name, system) for system in (HYBRID, AFFINITY)}
    for system, metrics in rows.items():
        assert metrics.num_completed > 0, system
        r = metrics.resilience
        assert r is not None, system
        # Gray, not hard, failure: degrade windows opened, nothing crashed.
        assert len(r.degraded_windows) >= 1, system
        assert r.outage_windows == [], system
        assert r.failed_requests == 0, system
        assert r.ttft_p90_degraded_s is not None, system

    # --- the headline: under a slow-but-alive replica, load-discounted
    # routing keeps the degraded-phase tail below pure prefix affinity's,
    # on the per-seed paired mean (each seed = one fault realisation).
    diff = sweep.paired_diff(
        workload_name, AFFINITY, HYBRID, metric="resilience_ttft_p90_degraded_s"
    )
    assert diff.mean > 0, (
        f"expected pure prefix affinity to suffer a worse degraded-phase "
        f"p90 TTFT than skywalker-hybrid; paired diff {diff.mean:+.3f}s"
    )

    # --- cross-seed TTR statistics are defined for every cell (every seed
    # saw at least one repaired throttle window).
    for system in rows:
        stats = sweep.aggregate(workload_name, system).stats
        assert "resilience_mean_ttr_s" in stats, system
        assert stats["resilience_mean_ttr_s"].mean > 0, system

    # --- by the end of the run every replica is back at full rate.
    # (The injector restored each drawn repair; nothing leaks.)
    report = sweep.report().format_table()
    assert "ttr (s)" in report
