"""Fig. 2 -- regional diurnal traffic patterns (WildChat-like trace).

Regenerates the six per-country hourly demand curves and verifies that each
shows a clear day/night swing whose peak follows the country's timezone.
"""

from __future__ import annotations

from repro.workloads import COUNTRY_PROFILES, generate_daily_trace


def _render(trace) -> str:
    lines = ["hour " + " ".join(f"{region:>14}" for region in trace.regions)]
    for hour in range(trace.num_hours):
        row = [f"{hour:4d}"] + [f"{trace.hourly_counts[region][hour]:14d}" for region in trace.regions]
        lines.append(" ".join(row))
    lines.append("")
    for region in trace.regions:
        lines.append(
            f"{region}: peak={trace.region_peak(region)} trough={trace.region_trough(region)} "
            f"peak/trough={trace.peak_to_trough_ratio(region):.2f}"
        )
    return "\n".join(lines)


def test_fig02_regional_diurnal_demand(benchmark, record_result):
    trace = benchmark.pedantic(
        lambda: generate_daily_trace(COUNTRY_PROFILES, seed=0), rounds=1, iterations=1
    )
    record_result("fig02_diurnal_traffic", _render(trace))

    # Every country shows a pronounced diurnal swing ...
    for region in trace.regions:
        assert trace.peak_to_trough_ratio(region) > 3.0
    # ... and peaks follow local afternoons: the US peak lands many hours
    # after the China peak in UTC terms.
    us_peak_hour = max(range(24), key=lambda h: trace.hourly_counts["united-states"][h])
    china_peak_hour = max(range(24), key=lambda h: trace.hourly_counts["china"][h])
    assert (us_peak_hour - china_peak_hour) % 24 >= 6
