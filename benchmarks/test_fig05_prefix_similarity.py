"""Fig. 5 -- prefix similarity within/across users and regions.

Reproduces the similarity averages (Fig. 5a) and the user-pair heatmap
(Fig. 5b) over the synthetic chat traces.  The paper's numbers: within-user
similarity 8.3-20.5%, across-user 2.5-10.9%, across-region ~2.5%, with the
within/across-user ratio between 2.47x (Arena) and 7.60x (WildChat).
"""

from __future__ import annotations

from repro.analysis import analyze_similarity, user_similarity_heatmap
from repro.workloads import (
    ARENA_LIKE,
    WILDCHAT_LIKE,
    ConversationConfig,
    ConversationWorkload,
)


def _requests_for(name):
    if name == "chatbot-arena":
        config = ConversationConfig(
            regions=("us", "eu", "asia"),
            users_per_region=25,
            conversations_per_user=2,
            turns_range=(2, 5),
            lengths=ARENA_LIKE,
            shared_templates=6,
            template_adoption=0.5,
            seed=21,
        )
    else:
        config = ConversationConfig(
            regions=("us", "eu", "asia"),
            users_per_region=25,
            conversations_per_user=2,
            turns_range=(2, 6),
            lengths=WILDCHAT_LIKE,
            shared_templates=4,
            template_adoption=0.3,
            seed=22,
        )
    return [
        request
        for program in ConversationWorkload(config).generate_programs()
        for request in program.all_requests()
    ]


def test_fig05a_similarity_averages(benchmark, record_result):
    def run():
        return {
            name: analyze_similarity(_requests_for(name), seed=5)
            for name in ("chatbot-arena", "wildchat")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Fig. 5a: average prefix similarity (%)", ""]
    lines.append(f"  {'workload':<16}{'within-user':>12}{'across-user':>12}{'within-region':>14}{'across-region':>14}{'ratio':>8}")
    for name, report in reports.items():
        lines.append(
            f"  {name:<16}{report.within_user * 100:>11.1f}%{report.across_user * 100:>11.1f}%"
            f"{report.within_region * 100:>13.1f}%{report.across_region * 100:>13.1f}%"
            f"{report.user_affinity_ratio:>7.2f}x"
        )
    record_result("fig05a_prefix_similarity", "\n".join(lines))

    for report in reports.values():
        # Ordering of the paper's bars: within-user >> across-user >= across-region.
        assert report.within_user > report.across_user
        assert report.within_user > report.across_region
        assert report.user_affinity_ratio > 1.5
        assert report.within_user > 0.05


def test_fig05b_user_similarity_heatmap(benchmark, record_result):
    requests = _requests_for("wildchat")
    users, matrix = benchmark.pedantic(
        lambda: user_similarity_heatmap(requests, num_users=20, seed=6),
        rounds=1,
        iterations=1,
    )
    diagonal = [matrix[i][i] for i in range(len(users))]
    off_diagonal = [
        matrix[i][j] for i in range(len(users)) for j in range(len(users)) if i != j
    ]
    diag_mean = sum(diagonal) / len(diagonal)
    off_mean = sum(off_diagonal) / len(off_diagonal)

    lines = [
        "Fig. 5b: user-pair similarity heatmap summary",
        "",
        f"  users sampled         : {len(users)}",
        f"  diagonal (same user)  : {diag_mean * 100:5.1f}% average similarity",
        f"  off-diagonal          : {off_mean * 100:5.1f}% average similarity",
    ]
    record_result("fig05b_heatmap", "\n".join(lines))

    assert diag_mean > 2 * off_mean
