"""Fig. 14 -- WAN bandwidth contention: blind vs selective pushing.

The graph-routed network (``repro.net``) gives cross-region traffic a
shared, finite-bandwidth backbone: every pushed KV prefix occupies its
WAN edge for ``bytes / bandwidth`` seconds, FIFO behind whatever else is
in flight.  That turns push *volume* into end-to-end latency -- and push
volume is exactly where the pushing policies differ:

* **BP** ships the whole prompt's KV on every dispatch (a blind push
  cannot know what the target holds),
* **SP-O / SP-P** ship only the suffix beyond the target's known-resident
  prefix, so a session's repeat dispatches cost almost nothing on the
  wire.

The setup forces the traffic across the backbone: US has clients but
**zero replicas**, so every US request offloads to EU/Asia and its push
payload crosses a contended WAN edge.  The benchmark sweeps that edge's
bandwidth from 10 Gb/s down to 0.5 Gb/s.  At 10 Gb/s the three policies
are within noise of each other; as the pipe narrows, BP's full-prompt
pushes saturate it and BP's p90 TTFT collapses (queueing delay on the
edge), while the selective policies' small suffixes keep fitting and
their tails hold.  Per-seed paired differences (≥3 seeds, a fresh ToT
workload per seed) put a 95% CI on the headline gap.
"""

from __future__ import annotations

from repro.experiments import ClusterConfig, SweepTask
from repro.experiments.sweep import SweepExecutor
from repro.experiments.systems import SkyWalkerConfig
from repro.experiments.workloads import build_tot_workload
from repro.net import NetConfig

from conftest import bench_duration, bench_scale, bench_seeds, bench_workers

SEED = 14
POLICIES = ("BP", "SP-O", "SP-P")
WORKLOAD = "tree-of-thoughts"

#: The swept cross-region bandwidths, label -> bytes/s.
BANDWIDTHS = {
    "10 Gb/s": 1.25e9,
    "2 Gb/s": 2.5e8,
    "1 Gb/s": 1.25e8,
    "0.5 Gb/s": 6.25e7,
}
#: The constrained point the headline assertions pin.
HEADLINE = "1 Gb/s"
#: High enough that outstanding-count capping never binds at this load;
#: SP-O's wire savings, not its admission limit, are what's under test.
SP_O_THRESHOLD = 48


def fig14_seeds() -> list:
    """At least three seeds: the paired CI needs real workload diversity."""
    seeds = bench_seeds(SEED)
    if len(seeds) < 3:
        seeds = [SEED + i for i in range(3)]
    return seeds


def _cluster(bandwidth: float) -> ClusterConfig:
    per_region = max(1, round(4 * bench_scale()))
    return ClusterConfig(
        # No US replicas: every US request offloads over the backbone.
        replicas_per_region={"us": 0, "eu": per_region, "asia": per_region},
        network=NetConfig(
            topology="backbone", wan_bandwidth_bytes_per_s=bandwidth
        ),
    )


def _sweep(bandwidth: float, seeds, duration: float):
    tasks = []
    for seed in seeds:
        workload = build_tot_workload(scale=bench_scale(), seed=seed)
        for policy in POLICIES:
            tasks.append(
                SweepTask(
                    system=SkyWalkerConfig(
                        kind="skywalker",
                        label=policy,
                        pushing=policy,
                        sp_o_threshold=SP_O_THRESHOLD,
                        hash_key="session",
                    ),
                    workload=workload,
                    cluster=_cluster(bandwidth),
                    duration_s=duration,
                    seed=seed,
                )
            )
    return SweepExecutor(workers=bench_workers()).run_cells(tasks)


def _run():
    duration = bench_duration()
    seeds = fig14_seeds()
    sweeps = {label: _sweep(bw, seeds, duration) for label, bw in BANDWIDTHS.items()}
    return sweeps, duration, seeds


def _render(sweeps, duration, seeds) -> str:
    lines = [
        "Fig. 14: shared-link bandwidth contention -- blind vs selective "
        "pushing over a routed WAN backbone",
        "  (US clients, zero US replicas: every US request offloads to "
        "EU/Asia and its pushed KV",
        f"   crosses a contended backbone edge; {duration:.0f}s runs, "
        f"seeds {seeds}, mean±95% CI across seeds)",
        "",
        f"  {'backbone bw':<12}{'policy':<8}{'p90 ttft (s)':>16}"
        f"{'completed':>11}{'tput tok/s':>12}",
    ]
    for label in BANDWIDTHS:
        sweep = sweeps[label]
        for policy in POLICIES:
            stats = sweep.aggregate(WORKLOAD, policy).stats
            ttft = stats["ttft_p90"]
            done = stats["num_completed"]
            tput = stats["throughput_tokens_per_s"]
            lines.append(
                f"  {label:<12}{policy:<8}"
                f"{ttft.mean:>9.3f}±{ttft.ci95:<6.3f}"
                f"{done.mean:>11.0f}{tput.mean:>12.1f}"
            )
        lines.append("")
    lines.append("  p90 TTFT, BP - selective (paired per seed; positive = "
                 "selective wins):")
    for label in BANDWIDTHS:
        sweep = sweeps[label]
        for policy in ("SP-O", "SP-P"):
            diff = sweep.paired_diff(WORKLOAD, "BP", policy, metric="ttft_p90")
            lines.append(
                f"    {label:<12}BP - {policy:<6}{diff.mean:+9.3f}s ± {diff.ci95:.3f}"
            )
    return "\n".join(lines)


def test_fig14_contention(benchmark, record_result):
    sweeps, duration, seeds = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result("fig14_contention", _render(sweeps, duration, seeds))

    # Every cell completed work at every bandwidth -- the pipe narrows,
    # nothing deadlocks.
    for label, sweep in sweeps.items():
        for policy in POLICIES:
            assert sweep.get(WORKLOAD, policy).num_completed > 0, (label, policy)

    def p90(label, policy):
        return sweeps[label].aggregate(WORKLOAD, policy).stats["ttft_p90"].mean

    # --- the headline: BP's full-prompt pushes saturate the constrained
    # backbone and its p90 TTFT collapses; the selective policies' small
    # suffixes keep fitting and their tails hold.
    wide, tight = "10 Gb/s", HEADLINE
    assert p90(tight, "BP") > 4.0 * p90(wide, "BP"), (
        f"expected BP to collapse on the constrained backbone: "
        f"{p90(tight, 'BP'):.3f}s vs {p90(wide, 'BP'):.3f}s at 10 Gb/s"
    )
    for policy in ("SP-O", "SP-P"):
        assert p90(tight, policy) < 3.0 * p90(wide, policy), (
            f"expected {policy} to hold its tail on the constrained "
            f"backbone: {p90(tight, policy):.3f}s vs {p90(wide, policy):.3f}s"
        )
        # Per-seed paired difference: BP is worse on every seed pairing,
        # with a 95% CI that stays positive.
        diff = sweeps[tight].paired_diff(WORKLOAD, "BP", policy, metric="ttft_p90")
        assert diff.mean - diff.ci95 > 0, (
            f"BP - {policy} paired p90 TTFT at {tight}: "
            f"{diff.mean:+.3f}s ± {diff.ci95:.3f} does not exclude zero"
        )

    # --- at the widest pipe the three policies are within noise of each
    # other: contention, not the policy mechanics, drives the gap.
    assert p90(wide, "BP") < 2.0 * p90(wide, "SP-P")
