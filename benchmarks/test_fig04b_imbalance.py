"""Fig. 4b -- KV-memory imbalance across replicas under Round Robin routing.

Two replicas receive exactly alternating requests, yet their memory
utilisation diverges because output lengths are unpredictable; the paper
observes up to a 2.64x peak-memory difference.
"""

from __future__ import annotations

from repro.experiments import run_imbalance_experiment

from conftest import bench_duration, bench_scale


def test_fig04b_round_robin_memory_imbalance(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_imbalance_experiment(
            clients=max(20, int(40 * bench_scale())),
            replicas=2,
            duration_s=bench_duration(),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )

    lines = ["Fig. 4b: per-replica KV memory utilisation under Round Robin", ""]
    for name, peak in result.peak_utilization.items():
        samples = result.timelines[name]
        mean = sum(u for _, u in samples) / len(samples)
        lines.append(f"  {name:<16} peak={peak * 100:5.1f}%  mean={mean * 100:5.1f}%  samples={len(samples)}")
    lines.append("")
    lines.append(f"  peak memory ratio between replicas: {result.peak_ratio:.2f}x  (paper: up to 2.64x)")
    record_result("fig04b_imbalance", "\n".join(lines))

    assert len(result.timelines) == 2
    # Round robin sends each replica the same number of requests, yet memory
    # utilisation still diverges measurably.
    assert result.peak_ratio > 1.05
