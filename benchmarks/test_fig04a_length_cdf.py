"""Fig. 4a -- CDF of input and output lengths of the chat workload.

Reproduces the qualitative shape of the WildChat length distributions:
heavy-tailed inputs and outputs, with most requests well under a thousand
tokens but a tail stretching to several thousand.
"""

from __future__ import annotations

from repro.metrics import percentile
from repro.workloads import ConversationConfig, ConversationWorkload, WILDCHAT_LIKE


def _collect_lengths():
    config = ConversationConfig(
        regions=("us", "eu", "asia"),
        users_per_region=30,
        conversations_per_user=2,
        turns_range=(2, 6),
        lengths=WILDCHAT_LIKE,
        seed=4,
    )
    inputs, outputs = [], []
    for program in ConversationWorkload(config).generate_programs():
        for request in program.all_requests():
            inputs.append(request.prompt_len)
            outputs.append(request.output_len)
    return inputs, outputs


def test_fig04a_length_cdf(benchmark, record_result):
    inputs, outputs = benchmark.pedantic(_collect_lengths, rounds=1, iterations=1)

    lines = ["Fig. 4a: request length distribution (tokens)", ""]
    lines.append(f"  {'percentile':<12}{'input':>10}{'output':>10}")
    for q in (25, 50, 75, 90, 99):
        lines.append(
            f"  p{q:<11}{percentile(inputs, q):>10.0f}{percentile(outputs, q):>10.0f}"
        )
    lines.append(f"  {'max':<12}{max(inputs):>10}{max(outputs):>10}")
    record_result("fig04a_length_cdf", "\n".join(lines))

    # Long-tailed: the 99th percentile dwarfs the median for both series.
    assert percentile(outputs, 99) > 3 * percentile(outputs, 50)
    assert percentile(inputs, 99) > 2 * percentile(inputs, 50)
    # Multi-turn histories make prompts longer than single outputs on average.
    assert percentile(inputs, 50) > 200
    assert max(outputs) > 1000
