"""Fig. 9 -- blind pushing vs selective pushing (SP-O, SP-P), single region.

The paper reports SP-P improving throughput by 1.27x over blind pushing and
1.4x over SP-O, and cutting P90 TTFT by 18.47x vs blind pushing.
"""

from __future__ import annotations

from repro.experiments import run_pushing_benchmark

from conftest import bench_duration, bench_scale, bench_seeds, bench_workers


def test_fig09_selective_pushing(benchmark, record_result):
    # The paper's 30 clients saturate four real L4 replicas; our simulated
    # clients spend more of their time waiting on stage synchronisation, so
    # we use twice as many to land in the same "replicas kept at high
    # utilisation" regime (§5.2).  Scaling below 0.25 shrinks this again.
    clients = max(12, int(round(60 * min(1.0, bench_scale() / 0.5))))
    result = benchmark.pedantic(
        lambda: run_pushing_benchmark(
            replicas=4,
            clients=clients,
            duration_s=bench_duration(),
            sp_o_threshold=24,
            seeds=bench_seeds(7),
            workers=min(bench_workers(), 3),
        ),
        rounds=1,
        iterations=1,
    )

    lines = ["Fig. 9: pushing policy comparison (single region, ToT-2)", ""]
    lines.append(
        f"  {'policy':<8}{'tput tok/s':>12}{'ttft p50':>10}{'ttft p90':>10}{'e2e p50':>10}"
        f"{'hit rate':>10}{'completed':>11}"
    )
    for policy, metrics in result.runs.items():
        lines.append(
            f"  {policy:<8}{metrics.throughput_tokens_per_s:>12.1f}{metrics.ttft.p50:>10.3f}"
            f"{metrics.ttft.p90:>10.3f}{metrics.e2e_latency.p50:>10.2f}"
            f"{metrics.cache_hit_rate * 100:>9.1f}%{metrics.num_completed:>11}"
        )
    lines.append("")
    lines.append(f"  SP-P throughput vs BP  : {result.throughput_gain('BP', 'SP-P'):.2f}x   (paper: 1.27x)")
    lines.append(f"  SP-P throughput vs SP-O: {result.throughput_gain('SP-O', 'SP-P'):.2f}x   (paper: 1.4x)")
    lines.append(f"  SP-P p90 TTFT reduction vs BP: {result.p90_ttft_reduction('BP', 'SP-P'):.2f}x   (paper: 18.47x)")
    seeds = bench_seeds(7)
    if len(seeds) > 1:
        lines.append("")
        lines.append(f"  aggregate over seeds {seeds} (mean±95% CI):")
        for policy in result.runs:
            lines.append("  " + result.aggregate(policy).format_row())
    record_result("fig09_selective_pushing", "\n".join(lines))

    bp, spo, spp = result.runs["BP"], result.runs["SP-O"], result.runs["SP-P"]
    # SP-P never loses meaningfully to blind pushing on throughput or tail
    # latency.  (In this reproduction the balancer's load-aware candidate
    # selection already prevents most of the imbalance blind pushing causes
    # on the real testbed, so the BP gap is muted -- see EXPERIMENTS.md.)
    assert spp.throughput_tokens_per_s >= 0.95 * bp.throughput_tokens_per_s
    assert spp.ttft.p90 <= bp.ttft.p90 * 1.15
    # The fixed-outstanding threshold (SP-O) clearly underperforms SP-P: the
    # paper reports 1.4x, and a mis-set threshold also wrecks tail latency.
    assert spp.throughput_tokens_per_s >= 1.15 * spo.throughput_tokens_per_s
    assert spp.ttft.p90 <= spo.ttft.p90
