"""Fig. 8 -- macro-benchmark: throughput, TTFT and end-to-end latency of every
system on every workload.

One test per workload column of Fig. 8.  Each runs the seven systems (GKE
Gateway, RR, LL, CH, SGLang Router, SkyWalker-CH, SkyWalker) on the same
scaled-down three-region cluster and prints the rows of the figure.  The
assertions check the paper's qualitative claims:

* SkyWalker's throughput is at least on par with (and usually above) every
  baseline on the chat workloads (paper: 1.12-2.06x),
* SkyWalker's median TTFT is the lowest or tied-lowest (paper: 1.74-6.30x
  lower latency), because requests enter through a local balancer and hit
  warm prefixes,
* prefix-aware systems reach much higher cache hit rates than RR/LL,
* on the uniform ToT workload consistent hashing is competitive (the paper
  even reports CH 2% ahead), while on Mixed Tree SkyWalker wins again.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALL_SYSTEMS, default_macro_cluster, run_macro_benchmark

from conftest import bench_duration, bench_scale, bench_seeds, bench_workers

WORKLOADS = ("chatbot-arena", "wildchat", "tree-of-thoughts", "mixed-tree")


def _render(result, workload) -> str:
    lines = [f"Fig. 8 ({workload}): throughput / TTFT / E2E latency", ""]
    lines.append(
        f"  {'system':<18}{'tput tok/s':>12}{'ttft p50':>10}{'ttft p90':>10}"
        f"{'e2e p50':>10}{'hit rate':>10}{'completed':>11}"
    )
    for system, metrics in result.runs[workload].items():
        lines.append(
            f"  {system:<18}{metrics.throughput_tokens_per_s:>12.1f}{metrics.ttft.p50:>10.3f}"
            f"{metrics.ttft.p90:>10.3f}{metrics.e2e_latency.p50:>10.2f}"
            f"{metrics.cache_hit_rate * 100:>9.1f}%{metrics.num_completed:>11}"
        )
    sky = result.runs[workload]["skywalker"]
    lines.append("")
    for system, speedup in result.speedup_over_baselines(workload).items():
        lines.append(f"  skywalker throughput vs {system:<18}: {speedup:5.2f}x")
    lines.append(f"  skywalker forwarded fraction: {sky.forwarded_fraction:.1%}")
    seeds = bench_seeds(0)
    if len(seeds) > 1:
        lines.append("")
        lines.append(f"  aggregate over seeds {seeds} (mean±95% CI):")
        for system in result.systems(workload):
            lines.append("  " + result.aggregate(workload, system).format_row())
    return "\n".join(lines)


def _run(workload):
    # Clients and replicas are scaled together so the per-replica load (and
    # thus the saturation regime of the paper's testbed) is preserved.  The
    # seven systems run as one process-parallel sweep; results are identical
    # to a serial run for the same seeds.  REPRO_BENCH_SEEDS > 1 repeats the
    # grid across seeds (the assertions below stay on the base seed).
    return run_macro_benchmark(
        systems=ALL_SYSTEMS,
        workloads=(workload,),
        scale=bench_scale(),
        duration_s=bench_duration(),
        cluster=default_macro_cluster(bench_scale()),
        seeds=bench_seeds(0),
        workers=bench_workers(),
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_fig08_macro(workload, benchmark, record_result):
    result = benchmark.pedantic(lambda: _run(workload), rounds=1, iterations=1)
    record_result(f"fig08_{workload}", _render(result, workload))

    row = result.runs[workload]
    skywalker = row["skywalker"]
    baselines = {name: m for name, m in row.items() if not name.startswith("skywalker")}

    for metrics in row.values():
        assert metrics.num_completed > 0

    # --- throughput: SkyWalker at least on par with every baseline (within
    # noise), clearly ahead of the weakest one.
    weakest = min(m.throughput_tokens_per_s for m in baselines.values())
    assert skywalker.throughput_tokens_per_s > weakest
    for name, metrics in baselines.items():
        if workload == "tree-of-thoughts" and name == "consistent-hash":
            # The paper itself reports CH marginally (2%) ahead on uniform ToT.
            assert skywalker.throughput_tokens_per_s > 0.85 * metrics.throughput_tokens_per_s
        else:
            assert skywalker.throughput_tokens_per_s > 0.9 * metrics.throughput_tokens_per_s

    # --- latency: SkyWalker has the lowest (or tied lowest) median TTFT.
    best_baseline_ttft = min(m.ttft.p50 for m in baselines.values())
    assert skywalker.ttft.p50 <= best_baseline_ttft * 1.1

    # --- cache locality: prefix awareness pays off vs RR.
    assert skywalker.cache_hit_rate > row["round-robin"].cache_hit_rate

    # --- the two SkyWalker variants are close; the trie variant should not
    # lose badly to CH anywhere (paper: it wins by 1.34-8.21%).
    assert skywalker.throughput_tokens_per_s > 0.9 * row["skywalker-ch"].throughput_tokens_per_s
