"""Fig. 12 (extension) -- KV tier-size sweep: what HBM fraction and host-RAM
tier size do to prefix locality and TTFT.

The paper's evaluation fixes the KV budget per replica; this figure asks the
memory-subsystem question behind it: as HBM shrinks (bigger models, longer
contexts), how much of the lost prefix locality can a host-RAM offload tier
buy back, and what do the promotion copies cost in first-token latency?

Grid: ``hbm_fraction`` x ``host_capacity_tokens`` on the Fig. 8 Chatbot
Arena workload, all cells running the full SkyWalker system.  A second
section prices selective pushing's transfer volume: BP ships every pushed
prefix in full, SP-O ships only the tokens the target replica does not
already hold, so its byte volume (and modelled transfer time) must scale
down with the replica-trie overlap.

Assertions (qualitative, like every figure here):

* hit rate and p90 TTFT actually move across the grid (>= 3 distinct cells),
* at reduced HBM, adding a host tier recovers hit rate (combined > HBM-only)
  and its promotions are the reason (tier hits > 0, demotions > 0),
* BP pushes strictly more bytes than SP-O, and each system's modelled push
  time equals its byte volume over the configured bandwidth.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    REGISTRY,
    SweepExecutor,
    SweepTask,
    build_arena_workload,
    default_macro_cluster,
    run_sweep_task,
)
from repro.mem import MemoryConfig

from conftest import bench_duration, bench_scale, bench_seeds, bench_workers

HBM_FRACTIONS = (0.4, 0.7, 1.0)
HOST_TOKENS = (0, 131_072)  # 0 and 16 GB of host RAM at 128 KiB/token
PUSH_BANDWIDTH = 10e9  # 10 GB/s cross-replica KV transfer


def _memory(hbm_fraction: float, host_tokens: int):
    if hbm_fraction == 1.0 and host_tokens == 0:
        return None  # the legacy flat model; the grid's reference corner
    return MemoryConfig(
        page_size=16,
        hbm_fraction=hbm_fraction,
        host_capacity_tokens=host_tokens,
        offload="lru-demote",
    )


def _run_grid():
    workload = build_arena_workload(scale=bench_scale(), seed=0)
    seed = bench_seeds(0)[0]
    cells = [
        (hbm, host) for hbm in HBM_FRACTIONS for host in HOST_TOKENS
    ]
    tasks = []
    for hbm, host in cells:
        cluster = dataclasses.replace(
            default_macro_cluster(bench_scale()), memory=_memory(hbm, host)
        )
        tasks.append(
            SweepTask(
                system=REGISTRY.spec("skywalker", hash_key=workload.hash_key),
                workload=workload,
                cluster=cluster,
                duration_s=bench_duration(),
                seed=seed,
            )
        )
    results = SweepExecutor(workers=bench_workers()).map(run_sweep_task, tasks)
    return dict(zip(cells, results))


def _run_push_costs():
    workload = build_arena_workload(scale=bench_scale(), seed=0)
    cluster = dataclasses.replace(
        default_macro_cluster(bench_scale()),
        memory=MemoryConfig(push_bandwidth_bytes_per_s=PUSH_BANDWIDTH),
    )
    tasks = [
        SweepTask(
            system=REGISTRY.spec(
                "skywalker", hash_key=workload.hash_key, pushing=pushing
            ),
            workload=workload,
            cluster=cluster,
            duration_s=bench_duration(),
            seed=bench_seeds(0)[0],
        )
        for pushing in ("BP", "SP-O")
    ]
    results = SweepExecutor(workers=bench_workers()).map(run_sweep_task, tasks)
    return dict(zip(("BP", "SP-O"), results))


def _combined_hit_rate(metrics) -> float:
    if metrics.memory is not None:
        return metrics.memory.combined_hit_rate
    return metrics.cache_hit_rate


def _render(grid, push) -> str:
    lines = [
        "Fig. 12: KV tier sweep (skywalker, chatbot-arena)",
        "",
        f"  {'hbm':>5} {'host tok':>9} {'hbm hit':>8} {'tier hit':>9} "
        f"{'combined':>9} {'ttft p90':>9} {'promo GB':>9} {'stall s':>8} {'done':>6}",
    ]
    for (hbm, host), metrics in grid.items():
        mem = metrics.memory
        tier_hit = mem.tier_hit_rate if mem is not None else 0.0
        hbm_hit = mem.hbm_hit_rate if mem is not None else metrics.cache_hit_rate
        promo_gb = mem.promotion_bytes / 1e9 if mem is not None else 0.0
        stall = mem.promotion_stall_s if mem is not None else 0.0
        lines.append(
            f"  {hbm:>5.2f} {host:>9} {hbm_hit * 100:>7.1f}% {tier_hit * 100:>8.1f}% "
            f"{_combined_hit_rate(metrics) * 100:>8.1f}% {metrics.ttft.p90:>9.3f} "
            f"{promo_gb:>9.2f} {stall:>8.2f} {metrics.num_completed:>6}"
        )
    lines.append("")
    lines.append("  pushed-prefix transfer volume (push bandwidth 10 GB/s):")
    for name, metrics in push.items():
        mem = metrics.memory
        lines.append(
            f"  {name:<5} pushed={mem.pushed_prefix_tokens:>9} tok "
            f"({mem.pushed_prefix_bytes / 1e9:6.2f} GB)  "
            f"transfer={mem.push_transfer_s:7.3f}s  "
            f"ttft p90={metrics.ttft.p90:.3f}"
        )
    return "\n".join(lines)


def test_fig12_tier_sweep(benchmark, record_result):
    grid, push = benchmark.pedantic(
        lambda: (_run_grid(), _run_push_costs()), rounds=1, iterations=1
    )
    record_result("fig12_tiers", _render(grid, push))

    for metrics in grid.values():
        assert metrics.num_completed > 0

    # --- the knobs actually move the figure's two y-axes.
    hit_rates = {round(_combined_hit_rate(m), 6) for m in grid.values()}
    ttfts = {round(m.ttft.p90, 6) for m in grid.values()}
    assert len(hit_rates) >= 3
    assert len(ttfts) >= 3

    # --- shrinking HBM alone costs prefix locality...
    full = grid[(1.0, 0)]
    starved = grid[(0.4, 0)]
    assert _combined_hit_rate(starved) < _combined_hit_rate(full)
    assert starved.memory is not None and full.memory is None

    # --- ...and a host tier buys some of it back, via real promotions.
    recovered = grid[(0.4, HOST_TOKENS[1])]
    assert recovered.memory.tier_hit_rate > 0
    assert recovered.memory.demoted_tokens > 0
    assert recovered.memory.promotion_stall_s > 0
    assert (
        recovered.memory.combined_hit_rate
        > starved.memory.combined_hit_rate
    )

    # --- push-cost section: SP-O ships strictly less KV than BP, and the
    # modelled transfer time is exactly size / bandwidth for both.
    bp, sp_o = push["BP"].memory, push["SP-O"].memory
    assert bp.pushed_prefix_tokens > 0 and sp_o.pushed_prefix_tokens > 0
    assert sp_o.pushed_prefix_bytes < bp.pushed_prefix_bytes
    for mem in (bp, sp_o):
        assert mem.push_transfer_s == pytest.approx(
            mem.pushed_prefix_bytes / PUSH_BANDWIDTH
        )
    assert sp_o.push_transfer_s < bp.push_transfer_s
