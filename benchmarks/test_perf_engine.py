"""Perf smoke: the sim-core engine macrobench must not regress.

Re-runs the quick (CI-sized) engine benchmarks — the timeline hold model,
the end-to-end engine step loop, and a shrunk streamed diurnal cell — and
checks them against the committed ``BENCH_engine.json``:

* machine-independent *ratios* are pinned tightly: the calendar/heap hold
  speedup (quick bound; the committed full run backs the >=2x headline at
  millions pending), the traced-peak flatness across a doubled simulation
  window, and the day cell completing every request it issued;
* absolute timings only get the loose accidental-cliff bound (same policy
  as ``test_perf_hotpaths.py``): CI runners are slower and noisier than
  the baseline host, so a tight wall-clock pin would flake.

The decision to pin the ``>=2x`` headline at scheduler-structure level (the
hold model) rather than end-to-end is deliberate and documented in
PERFORMANCE.md: Event allocation and callback dispatch are shared costs
that dilute any scheduler's win in the full engine loop.

The fresh quick run is written to ``benchmarks/results/`` so CI uploads it
as an artifact alongside the hot-path report.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf import run_engine_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_engine.json"

#: Accidental-cliff guard on absolute timings, not a noise detector.
REGRESSION_FACTOR = 3.0
#: The committed full hold run (millions pending) must back the headline.
FULL_MIN_HOLD_SPEEDUP = 2.0
#: Quick hold sizes (200k pending) show a smaller, noise-safe margin; the
#: measured quick speedup is ~1.6, so 1.2 catches "calendar stopped helping"
#: without flaking on runner jitter.
QUICK_MIN_HOLD_SPEEDUP = 1.2
#: Doubling the simulated window ~doubles the requests processed; the traced
#: peak must stay near-flat (in-flight population + saturated caches only).
MAX_ALLOC_FLATNESS = 1.5
#: The committed full day cell is the million-request claim.
MIN_DAY_REQUESTS = 1_000_000


@pytest.fixture(scope="module")
def committed_report():
    return json.loads(REPORT_PATH.read_text())


@pytest.fixture(scope="module")
def fresh_quick(results_dir):
    return run_engine_bench(quick=True, out_path=str(results_dir / "engine_quick.json"))


# ----------------------------------------------------------------------
# committed-report claims (no timing on this machine involved)
# ----------------------------------------------------------------------
def test_committed_full_hold_backs_the_2x_headline(committed_report):
    hold = committed_report["full"]["benchmarks"]["timeline_hold"]
    assert hold["speedup"] >= FULL_MIN_HOLD_SPEEDUP, (
        f"committed full hold-model speedup {hold['speedup']:.2f} no longer "
        f"backs the >={FULL_MIN_HOLD_SPEEDUP}x headline"
    )


def test_committed_day_cell_is_a_million_requests_and_lossless(committed_report):
    cell = committed_report["full"]["benchmarks"]["streamed_diurnal_cell"]
    assert cell["day_requests_issued"] >= MIN_DAY_REQUESTS
    assert cell["day_requests_completed"] == cell["day_requests_issued"]
    assert cell["day_outstanding"] == 0


def test_committed_flatness_ratio_is_flat(committed_report):
    cell = committed_report["full"]["benchmarks"]["streamed_diurnal_cell"]
    assert cell["flat_requests_long"] >= 1.8 * cell["flat_requests_short"]
    assert cell["alloc_flatness_ratio"] <= MAX_ALLOC_FLATNESS


def test_committed_engine_steps_prefer_calendar(committed_report):
    """End-to-end the win is diluted by shared event machinery, but the
    calendar must never be *slower* than the heap in the committed run."""
    steps = committed_report["full"]["benchmarks"]["engine_steps"]
    assert steps["speedup"] >= 1.0


# ----------------------------------------------------------------------
# fresh quick run on this machine
# ----------------------------------------------------------------------
def test_fresh_hold_speedup_holds(fresh_quick):
    hold = fresh_quick["benchmarks"]["timeline_hold"]
    assert hold["speedup"] >= QUICK_MIN_HOLD_SPEEDUP, (
        f"quick hold-model speedup {hold['speedup']:.2f} < "
        f"{QUICK_MIN_HOLD_SPEEDUP}: the calendar queue stopped beating the heap"
    )


def test_fresh_flatness_ratio_holds(fresh_quick):
    cell = fresh_quick["benchmarks"]["streamed_diurnal_cell"]
    assert cell["flat_requests_long"] >= 1.8 * cell["flat_requests_short"]
    assert cell["alloc_flatness_ratio"] <= MAX_ALLOC_FLATNESS, (
        f"traced peak grew {cell['alloc_flatness_ratio']:.2f}x across a "
        "doubled window: something retains O(requests) state"
    )


def test_fresh_quick_day_cell_is_lossless(fresh_quick):
    cell = fresh_quick["benchmarks"]["streamed_diurnal_cell"]
    assert cell["day_requests_completed"] == cell["day_requests_issued"] > 0
    assert cell["day_outstanding"] == 0


def test_no_engine_timing_regressed_over_committed_quick(committed_report, fresh_quick):
    baseline = committed_report["quick"]["benchmarks"]
    current = fresh_quick["benchmarks"]
    offenders = []
    for name, base_row in baseline.items():
        cur_row = current.get(name)
        assert cur_row is not None, f"benchmark {name} disappeared from the suite"
        for key, base in base_row.items():
            if not (key.endswith("_ns_per_op") or key.endswith("_ns_per_event")):
                continue
            cur = cur_row.get(key)
            assert cur is not None, f"{name}.{key} disappeared"
            if base > 0 and cur > REGRESSION_FACTOR * base:
                offenders.append(f"{name}.{key}: {cur:.0f}ns vs baseline {base:.0f}ns")
    assert not offenders, "engine regression(s) >%sx: %s" % (REGRESSION_FACTOR, offenders)
