"""Fig. 11 -- resilience under a balancer outage (§4.2).

The paper's §4.2 claim is architectural: because SkyWalker's balancers are
regional peers watched by an off-datapath controller, losing one balancer
degrades service gracefully -- the controller re-assigns its replicas to the
nearest healthy balancer, DNS re-points its clients, stranded requests are
re-routed -- whereas a centralized baseline's single balancer is a single
point of failure (its clients queue against a stale DNS record until
recovery), and the gateway baseline survives only by pushing every request
across an ocean.

This benchmark injects the same deterministic balancer outage -- the US
balancer dies a quarter into the run and is back one outage-window later --
into three system families and compares goodput *during* the outage,
per-phase p90 TTFT and time to recovery.  Artifacts honour
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_DURATION`` / ``REPRO_BENCH_WORKERS``
/ ``REPRO_BENCH_SEEDS`` like every other figure.
"""

from __future__ import annotations

from repro.experiments import REGISTRY, default_macro_cluster, run_sweep
from repro.experiments.workloads import build_arena_workload
from repro.faults import BalancerFailure, FaultSchedule

from conftest import bench_duration, bench_scale, bench_seeds, bench_workers

#: SkyWalker vs the multi-gateway and centralized §5.1 families.
SYSTEMS = ("skywalker", "gke-gateway", "round-robin")
SEED = 11


def outage_schedule(duration_s: float) -> FaultSchedule:
    """Kill the US balancer at 25% of the run for one sixth of it.

    The US hosts the centralized baseline's only balancer, so the same
    schedule is a regional blip for SkyWalker and a total outage for the
    centralized family.  ``recovery_time_s`` mirrors ``duration_s`` so the
    controller-driven (SkyWalker) and injector-driven (baselines) outage
    windows are comparable.
    """
    outage_len = duration_s / 6.0
    return FaultSchedule.single(
        duration_s * 0.25,
        BalancerFailure(region="us", duration_s=outage_len),
        recovery_time_s=outage_len,
    )


def _opt(value, fmt="8.3f"):
    return "       -" if value is None else format(value, fmt)


def _render(sweep, workload_name, duration) -> str:
    schedule = outage_schedule(duration)
    event = schedule.events[0]
    lines = [
        "Fig. 11: balancer-outage resilience "
        f"(us balancer down at t={event.at_s:.0f}s for {event.fault.duration_s:.0f}s "
        f"of a {duration:.0f}s run)",
        "",
        f"  {'system':<14}{'tput tok/s':>12}{'completed':>11}{'failovers':>11}"
        f"{'ttr (s)':>9}{'outage tok/s':>14}{'p90 ttft before/during/after (s)':>34}",
    ]
    for system in sweep.systems(workload_name):
        metrics = sweep.get(workload_name, system)
        r = metrics.resilience
        phases = (
            f"{_opt(r.ttft_p90_before_s, '.3f')}/{_opt(r.ttft_p90_during_s, '.3f')}"
            f"/{_opt(r.ttft_p90_after_s, '.3f')}"
        )
        lines.append(
            f"  {system:<14}{metrics.throughput_tokens_per_s:>12.1f}"
            f"{metrics.num_completed:>11}{r.failover_count:>11}"
            f"{_opt(r.mean_time_to_recovery_s, '9.2f')}"
            f"{_opt(r.goodput_during_outage_tokens_per_s, '14.1f')}"
            f"{phases:>34}"
        )
    lines.append("")
    for system in sweep.systems(workload_name):
        r = sweep.get(workload_name, system).resilience
        lines.append(
            f"  {system:<14} stranded={r.stranded_requests:<4} "
            f"parked-at-end={r.parked_requests:<4} failed={r.failed_requests:<4} "
            f"windows={['%.1f-%.1f' % w for w in r.outage_windows]}"
        )
    seeds = bench_seeds(SEED)
    if len(seeds) > 1:
        lines.append("")
        lines.append(f"  aggregate over seeds {seeds} (mean±95% CI):")
        lines.append(sweep.report().format_table())
    return "\n".join(lines)


def _run():
    duration = bench_duration()
    workload = build_arena_workload(scale=bench_scale(), seed=SEED)
    specs = [REGISTRY.spec(kind, hash_key=workload.hash_key) for kind in SYSTEMS]
    return (
        run_sweep(
            specs,
            [workload],
            cluster=default_macro_cluster(bench_scale()),
            duration_s=duration,
            seeds=bench_seeds(SEED),
            workers=bench_workers(),
            faults=outage_schedule(duration),
        ),
        workload.name,
        duration,
    )


def test_fig11_failover(benchmark, record_result):
    sweep, workload_name, duration = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result("fig11_failover", _render(sweep, workload_name, duration))

    rows = {system: sweep.get(workload_name, system) for system in SYSTEMS}
    sky = rows["skywalker"].resilience
    gateway = rows["gke-gateway"].resilience
    central = rows["round-robin"].resilience

    for system, metrics in rows.items():
        assert metrics.num_completed > 0, system
        r = metrics.resilience
        assert r is not None, system
        # Exactly one injected outage, detected and recovered within the run.
        assert r.failover_count == 1, system
        assert r.mean_time_to_recovery_s is not None, system
        assert len(r.outage_windows) == 1, system

    # --- graceful degradation: SkyWalker keeps serving during the outage
    # (controller failover).  The centralized family's during-window goodput
    # is propped up by the backlog it blind-pushed onto replicas before the
    # failure, so the honest degradation signal is the TTFT line below; the
    # goodput claim here is directional with a tolerance for that drain.
    assert (
        sky.goodput_during_outage_tokens_per_s
        > 0.8 * central.goodput_during_outage_tokens_per_s
    )
    assert sky.completed_during > 0
    # The gateway survives too (DNS re-routes its clients to the surviving
    # regions' gateways), it just pays cross-ocean latency for it.
    assert gateway.completed_during > 0

    # --- outage experience: requests sent during the centralized outage
    # wait for recovery, so their tail TTFT blows up; SkyWalker's stays in
    # interactive territory.
    assert central.ttft_p90_during_s is not None
    assert sky.ttft_p90_during_s < central.ttft_p90_during_s
    # The single point of failure is visible in the centralized family's own
    # timeline: during-outage tail latency far above its healthy baseline.
    assert central.ttft_p90_during_s > 3 * central.ttft_p90_before_s

    # --- the controller's recovery is bounded: detection (<= one probe
    # interval) plus the configured recovery time.
    schedule = outage_schedule(duration)
    assert sky.mean_time_to_recovery_s >= schedule.recovery_time_s
    assert sky.mean_time_to_recovery_s <= schedule.recovery_time_s + 1.0

    # --- everyone is healthy again by the end of the run.
    for system, metrics in rows.items():
        assert metrics.resilience.outage_windows[0][1] < duration, system
