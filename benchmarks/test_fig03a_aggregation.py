"""Fig. 3a -- aggregated load across regions is far flatter than regional load.

The paper reports per-region peak-to-trough variance of 2.88x-32.64x before
aggregation, collapsing to 1.29x afterwards.
"""

from __future__ import annotations

from repro.analysis import analyze_aggregation
from repro.network import wide_topology
from repro.workloads import DiurnalPattern, generate_daily_trace


def _aws_region_patterns():
    """One diurnal pattern per AWS-style region of the wide topology."""
    topology = wide_topology()
    base_rates = {
        "us-east-1": (400, 3800),
        "us-east-2": (150, 1400),
        "us-west": (250, 2300),
        "eu-west": (200, 2100),
        "eu-central": (180, 1700),
        "ap-southeast": (220, 2500),
        "ap-northeast": (200, 2200),
    }
    return {
        name: DiurnalPattern(
            utc_offset_hours=topology.info(name).utc_offset_hours,
            base_rate=base,
            peak_rate=peak,
        )
        for name, (base, peak) in base_rates.items()
    }


def test_fig03a_aggregation_flattens_demand(benchmark, record_result):
    def run():
        trace = generate_daily_trace(_aws_region_patterns(), seed=1)
        return trace, analyze_aggregation(trace)

    trace, analysis = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Fig. 3a: per-region vs aggregated demand variance", ""]
    for region, ratio in analysis.per_region_peak_to_trough.items():
        lines.append(f"  {region:<14} peak/trough = {ratio:6.2f}x  (peak {analysis.per_region_peaks[region]})")
    lines.append("")
    lines.append(f"  aggregated     peak/trough = {analysis.aggregated_peak_to_trough:6.2f}x")
    lines.append(f"  aggregated peak {analysis.aggregated_peak} vs sum of regional peaks {analysis.sum_of_region_peaks}")
    lines.append(f"  peak capacity reduction from aggregation: {analysis.peak_reduction_fraction:.1%}")
    record_result("fig03a_aggregation", "\n".join(lines))

    # Shape of the paper's result: regional variance is large, the aggregate
    # is much flatter, and aggregation removes a sizeable share of the peak.
    assert analysis.max_regional_variance > 2.8
    assert analysis.aggregated_peak_to_trough < min(analysis.per_region_peak_to_trough.values())
    assert analysis.aggregated_peak_to_trough < 2.5
    assert analysis.peak_reduction_fraction > 0.25
