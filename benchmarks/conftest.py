"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table/figure of the paper's
evaluation.  Results are printed and also written to ``benchmarks/results/``
so a full ``pytest benchmarks/ --benchmark-only`` run leaves behind the
complete set of reproduced rows/series.

Four environment variables control fidelity:

* ``REPRO_BENCH_SCALE``     -- client/replica scale factor (default 0.5; the
  paper's full scale is 1.0).
* ``REPRO_BENCH_DURATION``  -- simulated seconds per run (default 120).
* ``REPRO_BENCH_WORKERS``   -- worker processes per sweep (default 0 = auto:
  one per core, capped at 4).  Sweep results are bit-identical for any
  worker count, so this only trades wall-clock; full-fidelity Fig. 8
  reproductions (scale 1.0) are where it pays off.
* ``REPRO_BENCH_SEEDS``     -- number of seeds per sweep cell (default 1).
  With N > 1 every figure repeats its sweep under seeds ``base .. base+N-1``
  (fresh workload per seed) and the recorded artifacts gain a mean/95%-CI
  aggregate section.  The default of 1 keeps the committed artifacts
  bit-identical to the historical single-seed runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_duration() -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", "120"))


def bench_workers() -> int:
    value = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
    if value <= 0:
        return max(1, min(4, os.cpu_count() or 1))
    return value


def bench_seeds(base: int) -> list:
    """The seed list for one figure's sweep: ``base`` is the figure's
    historical seed, so ``REPRO_BENCH_SEEDS=1`` (the default) reproduces
    the committed single-seed artifacts bit-identically."""
    count = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
    return [base + i for i in range(max(1, count))]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a named result artefact and echo it to stdout."""

    def _record(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print(f"\n===== {name} =====")
        print(text)
        return path

    return _record
