"""Perf smoke: the hot-path microbenchmarks must not regress.

Runs the quick (CI-sized) ``repro.perf`` suite and compares every per-op
timing against the committed baseline in ``BENCH_hotpaths.json`` (the
``after_quick`` section, measured on the optimized implementations).  The
bound is deliberately loose — 3x — so it catches an accidental
reintroduction of a full-tree scan (a >10x cliff at these sizes) without
flaking on machine-speed differences between CI runners and the baseline
host.

Scaling *slopes* are machine-independent, so those are pinned tightly: the
per-eviction cost of both trees must stay sublinear in structure size.

The fresh quick run is also written to ``benchmarks/results/`` so CI can
upload it as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf import run_suite

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_hotpaths.json"

#: Accidental-O(n^2) guard, not a noise detector.
REGRESSION_FACTOR = 3.0
#: A heap pop is ~O(log n); anything at or above ~sqrt growth means a scan
#: crept back into eviction.
MAX_EVICTION_SLOPE = 0.5


@pytest.fixture(scope="module")
def committed_report():
    return json.loads(REPORT_PATH.read_text())


@pytest.fixture(scope="module")
def fresh_quick(results_dir):
    return run_suite(quick=True, out_path=str(results_dir / "perf_quick.json"))


def _time_keys(row):
    return [k for k in row if k.endswith("_us") or "_us_" in k or k == "wall_s"]


def test_no_hotpath_regressed_over_committed_baseline(committed_report, fresh_quick):
    baseline = committed_report["after_quick"]["benchmarks"]
    current = fresh_quick["benchmarks"]
    offenders = []
    for name, base_row in baseline.items():
        cur_row = current.get(name)
        assert cur_row is not None, f"benchmark {name} disappeared from the suite"
        for key in _time_keys(base_row):
            base, cur = base_row[key], cur_row.get(key)
            assert cur is not None, f"{name}.{key} disappeared"
            if base > 0 and cur > REGRESSION_FACTOR * base:
                offenders.append(f"{name}.{key}: {cur:.2f} vs baseline {base:.2f}")
    assert not offenders, "hot-path regression(s) >%sx: %s" % (REGRESSION_FACTOR, offenders)


def test_eviction_scaling_stays_sublinear(fresh_quick):
    for name in ("trie_evict_scaling", "radix_evict_scaling"):
        slope = fresh_quick["benchmarks"][name]["loglog_slope"]
        assert slope < MAX_EVICTION_SLOPE, (
            f"{name} per-eviction cost grows ~n^{slope:.2f}; "
            "a full-tree scan has crept back into the eviction path"
        )


def test_committed_report_shows_the_claimed_wins(committed_report):
    """The committed before/after numbers must back the PR's claims:
    >=30% wall-clock off the Fig. 8 wildchat cell and >=2x fewer transient
    allocations on the prefix-routing lookup."""
    before = committed_report["before"]["benchmarks"]
    after = committed_report["after"]["benchmarks"]
    cell_before = before["fig8_wildchat_cell"]["wall_s"]
    cell_after = after["fig8_wildchat_cell"]["wall_s"]
    assert cell_after <= 0.7 * cell_before
    alloc_before = before["trie_best_target"]["alloc_peak_bytes_per_op"]
    alloc_after = after["trie_best_target"]["alloc_peak_bytes_per_op"]
    assert alloc_after * 2 <= alloc_before
    # And the committed "after" eviction scaling must already be sublinear.
    for name in ("trie_evict_scaling", "radix_evict_scaling"):
        assert after[name]["loglog_slope"] < MAX_EVICTION_SLOPE
